//! Control-flow graph: predecessors, successors, reverse postorder.

use crate::entities::BlockId;
use crate::func::Function;

/// Precomputed CFG facts for one [`Function`].
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.block_count();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for b in func.block_ids() {
            for s in func.block(b).term.successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        // Iterative DFS postorder from the entry; unreachable blocks are
        // excluded from the RPO (their rpo_index is None).
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
        state[func.entry().index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![None; n];
        for (i, b) in post.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }
        Cfg {
            preds,
            succs,
            rpo: post,
            rpo_index,
        }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Reachable blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index[b.index()].map(|i| i as usize)
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Ty;

    fn diamond() -> (crate::Program, crate::MethodId) {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("d", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.const_i32(0);
        let c = b.gt(x, zero);
        let out = b.new_reg(Ty::I32);
        b.if_else(c, |b| b.move_(out, x), |b| b.move_(out, zero));
        b.ret(Some(out));
        let m = b.finish();
        (pb.finish(), m)
    }

    #[test]
    fn diamond_cfg() {
        let (p, m) = diamond();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let entry = f.entry();
        assert_eq!(cfg.succs(entry).len(), 2);
        assert_eq!(cfg.rpo()[0], entry);
        // The join block has two predecessors.
        let join = cfg
            .rpo()
            .iter()
            .copied()
            .find(|&b| cfg.preds(b).len() == 2)
            .expect("join block");
        assert!(cfg.is_reachable(join));
        // RPO places entry before both arms before the join.
        for &arm in cfg.succs(entry) {
            assert!(cfg.rpo_index(entry).unwrap() < cfg.rpo_index(arm).unwrap());
            assert!(cfg.rpo_index(arm).unwrap() < cfg.rpo_index(join).unwrap());
        }
    }

    #[test]
    fn dead_block_after_return_is_unreachable() {
        let (p, m) = diamond();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let unreachable: Vec<_> = f.block_ids().filter(|&b| !cfg.is_reachable(b)).collect();
        assert_eq!(unreachable.len(), 1, "the dead block created by ret()");
    }
}
