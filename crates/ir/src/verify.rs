//! IR verifier: structural and type checks.

use crate::entities::{BlockId, Reg};
use crate::func::Function;
use crate::instr::{Instr, PrefetchAddr, Terminator};
use crate::program::Program;
use crate::types::Ty;

/// An IR verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Human-readable description of the violation.
    msg: String,
}

impl VerifyError {
    fn new(msg: String) -> Self {
        VerifyError { msg }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for VerifyError {}

macro_rules! check {
    ($cond:expr, $($arg:tt)*) => {
        if !$cond {
            return Err(VerifyError::new(format!($($arg)*)));
        }
    };
}

/// Verifies `func` against `program`.
///
/// Checks: block targets in range, register indices in range, operand type
/// agreement, integer-only ops not applied to floats/refs, call signatures,
/// field/static/array element types, and prefetch address operand types.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify(program: &Program, func: &Function) -> Result<(), VerifyError> {
    for b in func.block_ids() {
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            check_instr(program, func, b, i, instr)?;
        }
        check_term(func, b)?;
    }
    Ok(())
}

/// [`verify`] in collecting mode: instead of stopping at the first
/// violation, checks every instruction and terminator and returns all
/// findings (at most one per site — a site's remaining checks are skipped
/// once it fails, since they may depend on the violated invariant). An
/// empty vector means the function verifies.
pub fn verify_all(program: &Program, func: &Function) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for b in func.block_ids() {
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            if let Err(e) = check_instr(program, func, b, i, instr) {
                errors.push(e);
            }
        }
        if let Err(e) = check_term(func, b) {
            errors.push(e);
        }
    }
    errors
}

/// Checks one instruction; at most one error is reported per site because
/// later checks depend on earlier ones (e.g. register types are only
/// consulted once the registers are known to be in range).
fn check_instr(
    program: &Program,
    func: &Function,
    b: BlockId,
    i: usize,
    instr: &Instr,
) -> Result<(), VerifyError> {
    let nregs = func.reg_count();
    let reg_ok = |r: Reg| r.index() < nregs;
    let at = format!("{} {b}:{i}", func.name());
    let mut used = Vec::new();
    instr.uses(&mut used);
    for r in used.iter().chain(instr.dst().iter()) {
        check!(reg_ok(*r), "{at}: register {r} out of range");
    }
    let ty = |r: Reg| func.reg_ty(r);
    match instr {
        Instr::Const { dst, value } => {
            check!(
                ty(*dst) == value.ty(),
                "{at}: const type mismatch ({} vs {})",
                ty(*dst),
                value.ty()
            );
        }
        Instr::Move { dst, src } => {
            check!(
                ty(*dst) == ty(*src),
                "{at}: move type mismatch ({} <- {})",
                ty(*dst),
                ty(*src)
            );
        }
        Instr::Bin { dst, op, a, b: rb } => {
            check!(ty(*a) == ty(*rb), "{at}: binop operand types differ");
            check!(ty(*dst) == ty(*a), "{at}: binop result type differs");
            check!(ty(*a) != Ty::Ref, "{at}: binop on references");
            if op.int_only() {
                check!(ty(*a).is_int(), "{at}: {op:?} requires integers");
            }
        }
        Instr::Un { dst, op, src } => {
            check!(ty(*dst) == ty(*src), "{at}: unop type mismatch");
            check!(ty(*src) != Ty::Ref, "{at}: unop on reference");
            if *op == crate::instr::UnOp::Not {
                check!(ty(*src).is_int(), "{at}: Not requires integers");
            }
        }
        Instr::Cmp { dst, a, b: rb, .. } => {
            check!(ty(*a) == ty(*rb), "{at}: cmp operand types differ");
            check!(ty(*dst) == Ty::I32, "{at}: cmp result must be i32");
        }
        Instr::Convert { dst, conv, src } => {
            let (from, to) = conv.signature();
            check!(ty(*src) == from, "{at}: convert source type");
            check!(ty(*dst) == to, "{at}: convert result type");
        }
        Instr::GetField { dst, obj, field } => {
            check!(ty(*obj) == Ty::Ref, "{at}: getfield on non-ref");
            check!(field.index() < program.field_count(), "{at}: bad field id");
            check!(
                ty(*dst) == program.field(*field).ty.reg_ty(),
                "{at}: getfield result type"
            );
        }
        Instr::PutField { obj, field, src } => {
            check!(ty(*obj) == Ty::Ref, "{at}: putfield on non-ref");
            check!(field.index() < program.field_count(), "{at}: bad field id");
            check!(
                ty(*src) == program.field(*field).ty.reg_ty(),
                "{at}: putfield value type"
            );
        }
        Instr::GetStatic { dst, sid } => {
            check!(sid.index() < program.static_count(), "{at}: bad static id");
            check!(
                ty(*dst) == program.static_def(*sid).ty.reg_ty(),
                "{at}: getstatic result type"
            );
        }
        Instr::PutStatic { sid, src } => {
            check!(sid.index() < program.static_count(), "{at}: bad static id");
            check!(
                ty(*src) == program.static_def(*sid).ty.reg_ty(),
                "{at}: putstatic value type"
            );
        }
        Instr::ALoad {
            dst,
            arr,
            idx,
            elem,
        } => {
            check!(ty(*arr) == Ty::Ref, "{at}: aload on non-ref");
            check!(ty(*idx) == Ty::I32, "{at}: aload index must be i32");
            check!(ty(*dst) == elem.reg_ty(), "{at}: aload result type");
        }
        Instr::AStore {
            arr,
            idx,
            src,
            elem,
        } => {
            check!(ty(*arr) == Ty::Ref, "{at}: astore on non-ref");
            check!(ty(*idx) == Ty::I32, "{at}: astore index must be i32");
            check!(ty(*src) == elem.reg_ty(), "{at}: astore value type");
        }
        Instr::ArrayLen { dst, arr } => {
            check!(ty(*arr) == Ty::Ref, "{at}: arraylength on non-ref");
            check!(ty(*dst) == Ty::I32, "{at}: arraylength result type");
        }
        Instr::New { dst, class } => {
            check!(class.index() < program.class_count(), "{at}: bad class id");
            check!(ty(*dst) == Ty::Ref, "{at}: new result type");
        }
        Instr::NewArray { dst, len, .. } => {
            check!(ty(*len) == Ty::I32, "{at}: newarray length must be i32");
            check!(ty(*dst) == Ty::Ref, "{at}: newarray result type");
        }
        Instr::Call { dst, callee, args } => {
            check!(
                callee.index() < program.method_count(),
                "{at}: bad method id"
            );
            let callee_fn = program.method(*callee).func();
            check!(
                args.len() == callee_fn.param_count(),
                "{at}: call to {} with {} args, expected {}",
                callee_fn.name(),
                args.len(),
                callee_fn.param_count()
            );
            for (i, (a, p)) in args.iter().zip(callee_fn.params()).enumerate() {
                check!(
                    ty(*a) == callee_fn.reg_ty(p),
                    "{at}: call arg {i} type mismatch"
                );
            }
            match (dst, callee_fn.ret_ty()) {
                (Some(d), Some(rt)) => {
                    check!(ty(*d) == rt, "{at}: call result type mismatch")
                }
                (Some(_), None) => {
                    check!(false, "{at}: call captures result of void method")
                }
                _ => {}
            }
        }
        Instr::Prefetch { addr, .. } => verify_addr(func, addr, &at)?,
        Instr::SpecLoad { dst, addr } => {
            check!(ty(*dst) == Ty::Ref, "{at}: spec_load result must be ref");
            verify_addr(func, addr, &at)?;
        }
    }
    Ok(())
}

fn check_term(func: &Function, b: BlockId) -> Result<(), VerifyError> {
    let nregs = func.reg_count();
    let nblocks = func.block_count();
    let reg_ok = |r: Reg| r.index() < nregs;
    let block_ok = |t: BlockId| t.index() < nblocks;
    match &func.block(b).term {
        Terminator::Jump(t) => check!(block_ok(*t), "{b}: jump target out of range"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            check!(reg_ok(*cond), "{b}: branch cond out of range");
            check!(
                func.reg_ty(*cond) == Ty::I32,
                "{b}: branch cond must be i32"
            );
            check!(block_ok(*then_bb), "{b}: then target out of range");
            check!(block_ok(*else_bb), "{b}: else target out of range");
        }
        Terminator::Return(v) => match (v, func.ret_ty()) {
            (Some(r), Some(rt)) => {
                check!(reg_ok(*r), "{b}: return reg out of range");
                check!(func.reg_ty(*r) == rt, "{b}: return type mismatch");
            }
            (Some(_), None) => check!(false, "{b}: returning value from void function"),
            (None, Some(_)) => check!(false, "{b}: missing return value"),
            (None, None) => {}
        },
        Terminator::Unreachable => {}
    }
    Ok(())
}

fn verify_addr(func: &Function, addr: &PrefetchAddr, at: &str) -> Result<(), VerifyError> {
    match addr {
        PrefetchAddr::FieldOf { base, .. } => {
            check!(
                func.reg_ty(*base) == Ty::Ref,
                "{at}: prefetch base must be ref"
            );
        }
        PrefetchAddr::ArrayElem { arr, idx, .. } => {
            check!(
                func.reg_ty(*arr) == Ty::Ref,
                "{at}: prefetch array must be ref"
            );
            check!(
                func.reg_ty(*idx) == Ty::I32,
                "{at}: prefetch index must be i32"
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::entities::Reg;
    use crate::types::{Const, Ty};

    #[test]
    fn valid_function_passes() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("ok", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        b.ret(Some(x));
        b.finish(); // finish() runs the verifier internally
    }

    #[test]
    fn type_mismatch_detected() {
        let p = Program::new();
        let mut f = Function::with_signature("bad", &[Ty::I32], None);
        let r = f.new_reg(Ty::F64);
        let entry = f.entry();
        f.block_mut(entry).instrs.push(Instr::Const {
            dst: r,
            value: Const::I32(1),
        });
        f.block_mut(entry).term = Terminator::Return(None);
        let err = verify(&p, &f).unwrap_err();
        assert!(err.to_string().contains("const type mismatch"), "{err}");
    }

    #[test]
    fn out_of_range_register_detected() {
        let p = Program::new();
        let mut f = Function::with_signature("bad2", &[], None);
        let entry = f.entry();
        f.block_mut(entry).instrs.push(Instr::Move {
            dst: Reg::new(5),
            src: Reg::new(6),
        });
        f.block_mut(entry).term = Terminator::Return(None);
        assert!(verify(&p, &f).is_err());
    }

    #[test]
    fn branch_cond_must_be_i32() {
        let p = Program::new();
        let mut f = Function::with_signature("bad3", &[Ty::F64], None);
        let t = f.add_block();
        let entry = f.entry();
        f.block_mut(t).term = Terminator::Return(None);
        f.block_mut(entry).term = Terminator::Branch {
            cond: Reg::new(0),
            then_bb: t,
            else_bb: t,
        };
        let err = verify(&p, &f).unwrap_err();
        assert!(err.to_string().contains("cond must be i32"), "{err}");
    }

    #[test]
    fn void_return_mismatch_detected() {
        let p = Program::new();
        let mut f = Function::with_signature("bad4", &[Ty::I32], Some(Ty::I32));
        let entry = f.entry();
        f.block_mut(entry).term = Terminator::Return(None);
        assert!(verify(&p, &f).is_err());
    }

    #[test]
    fn verify_all_collects_every_site() {
        let p = Program::new();
        let mut f = Function::with_signature("multi", &[Ty::I32], Some(Ty::I32));
        let r = f.new_reg(Ty::F64);
        let entry = f.entry();
        // Two independent violations in one block, plus a bad terminator.
        f.block_mut(entry).instrs.push(Instr::Const {
            dst: r,
            value: Const::I32(1),
        });
        f.block_mut(entry).instrs.push(Instr::Move {
            dst: Reg::new(9),
            src: Reg::new(9),
        });
        f.block_mut(entry).term = Terminator::Return(None);
        let errors = verify_all(&p, &f);
        assert_eq!(errors.len(), 3, "{errors:?}");
        // The first collected error is what `verify` reports.
        assert_eq!(verify(&p, &f).unwrap_err(), errors[0]);
        assert!(errors[0].to_string().contains("const type mismatch"));
        assert!(errors[1].to_string().contains("out of range"));
        assert!(errors[2].to_string().contains("missing return value"));
    }

    #[test]
    fn verify_all_empty_on_valid_function() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("ok2", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let y = b.add(x, x);
        b.ret(Some(y));
        let m = b.finish();
        let p = pb.finish();
        assert!(verify_all(&p, p.method(m).func()).is_empty());
    }
}
