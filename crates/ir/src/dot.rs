//! Graphviz (DOT) export of control-flow graphs.

use crate::func::Function;
use crate::instr::Terminator;
use crate::program::Program;

/// Renders `func`'s CFG as a DOT digraph, one record node per basic block
/// with its instructions, solid edges for jumps and labelled edges for
/// branch arms.
pub fn cfg_to_dot(program: &Program, func: &Function) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", func.name());
    let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
    for b in func.block_ids() {
        let block = func.block(b);
        let mut label = format!("{b}\\l");
        for instr in &block.instrs {
            let text = crate::display::instr_to_string(program, func, instr)
                .replace('"', "'")
                .replace('\\', "\\\\");
            label.push_str(&text);
            label.push_str("\\l");
        }
        let _ = writeln!(s, "  {} [label=\"{}\"];", b.index(), label);
        match &block.term {
            Terminator::Jump(t) => {
                let _ = writeln!(s, "  {} -> {};", b.index(), t.index());
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                let _ = writeln!(s, "  {} -> {} [label=\"T\"];", b.index(), then_bb.index());
                let _ = writeln!(s, "  {} -> {} [label=\"F\"];", b.index(), else_bb.index());
            }
            Terminator::Return(_) | Terminator::Unreachable => {}
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Ty;
    use crate::CmpOp;

    #[test]
    fn dot_has_nodes_and_edges() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("loopy", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.add(acc, i);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let m = b.finish();
        let p = pb.finish();
        let dot = cfg_to_dot(&p, p.method(m).func());
        assert!(dot.starts_with("digraph \"loopy\""), "{dot}");
        assert!(dot.contains("label=\"T\""), "branch arms labelled: {dot}");
        assert!(dot.contains("->"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
        // Every reachable block appears as a node declaration.
        let f = p.method(m).func();
        for b in f.block_ids() {
            assert!(dot.contains(&format!("  {} [label=", b.index())), "{dot}");
        }
    }
}
