//! Functions (method bodies) and basic blocks.

use crate::entities::{BlockId, InstrRef, Reg};
use crate::instr::{Instr, Terminator};
use crate::types::Ty;

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// The instructions in execution order.
    pub instrs: Vec<Instr>,
    /// The block terminator.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `Unreachable` (the builder's placeholder).
    pub fn new() -> Self {
        Block {
            instrs: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// A function body: typed virtual registers and a CFG of basic blocks.
///
/// The first [`Function::param_count`] registers are the parameters, in
/// order. Registers are mutable (this IR is not SSA), matching the
/// stack-frame model the paper's object inspection copies.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    name: String,
    param_count: usize,
    ret: Option<Ty>,
    reg_tys: Vec<Ty>,
    blocks: Vec<Block>,
    entry: BlockId,
}

impl Function {
    /// Creates an empty function with the given signature; used by the
    /// builder.
    pub fn with_signature(name: impl Into<String>, params: &[Ty], ret: Option<Ty>) -> Self {
        Function {
            name: name.into(),
            param_count: params.len(),
            ret,
            reg_tys: params.to_vec(),
            blocks: vec![Block::new()],
            entry: BlockId::new(0),
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters (the first registers).
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The parameter registers, in order.
    pub fn params(&self) -> impl Iterator<Item = Reg> + '_ {
        (0..self.param_count).map(Reg::new)
    }

    /// Return type, if any.
    pub fn ret_ty(&self) -> Option<Ty> {
        self.ret
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of virtual registers.
    pub fn reg_count(&self) -> usize {
        self.reg_tys.len()
    }

    /// Type of register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a register of this function.
    pub fn reg_ty(&self, r: Reg) -> Ty {
        self.reg_tys[r.index()]
    }

    /// Allocates a fresh register of type `ty`.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        let r = Reg::new(self.reg_tys.len());
        self.reg_tys.push(ty);
        r
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// All block ids, in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Borrows block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a block of this function.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutably borrows block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a block of this function.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(Block::new());
        id
    }

    /// The instruction at `site`.
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range.
    pub fn instr(&self, site: InstrRef) -> &Instr {
        &self.blocks[site.block.index()].instrs[site.index as usize]
    }

    /// Iterates over all instruction sites in block order.
    pub fn instr_sites(&self) -> impl Iterator<Item = InstrRef> + '_ {
        self.block_ids()
            .flat_map(move |b| (0..self.block(b).instrs.len()).map(move |i| InstrRef::new(b, i)))
    }

    /// Total number of instructions (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::types::Const;

    #[test]
    fn signature_and_regs() {
        let mut f = Function::with_signature("f", &[Ty::I32, Ty::Ref], Some(Ty::I32));
        assert_eq!(f.param_count(), 2);
        assert_eq!(f.reg_ty(Reg::new(0)), Ty::I32);
        assert_eq!(f.reg_ty(Reg::new(1)), Ty::Ref);
        let r = f.new_reg(Ty::F64);
        assert_eq!(r, Reg::new(2));
        assert_eq!(f.reg_ty(r), Ty::F64);
        assert_eq!(
            f.params().collect::<Vec<_>>(),
            vec![Reg::new(0), Reg::new(1)]
        );
    }

    #[test]
    fn blocks_and_sites() {
        let mut f = Function::with_signature("f", &[], None);
        let b1 = f.add_block();
        let r = f.new_reg(Ty::I32);
        f.block_mut(f.entry()).instrs.push(Instr::Const {
            dst: r,
            value: Const::I32(1),
        });
        f.block_mut(b1).instrs.push(Instr::Move { dst: r, src: r });
        assert_eq!(f.instr_count(), 2);
        let sites: Vec<_> = f.instr_sites().collect();
        assert_eq!(sites.len(), 2);
        assert!(matches!(f.instr(sites[0]), Instr::Const { .. }));
    }
}
