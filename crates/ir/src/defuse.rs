//! Reaching definitions and use-def chains.
//!
//! The IR is not SSA — registers are mutable locals, as in the stack frames
//! the paper's JIT operates on — so the load dependence graph construction
//! (paper §3.1, "we can construct the graph, for instance, by utilizing the
//! use-def chains built for the method") needs a classic reaching-definitions
//! analysis.

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::entities::{InstrRef, Reg};
use crate::func::Function;

/// A definition site of a register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DefSite {
    /// The register is a parameter (defined at function entry).
    Param(Reg),
    /// The register is defined by the instruction at this site.
    Instr(InstrRef),
}

/// Reaching-definitions facts plus use-def queries for one function.
#[derive(Clone, Debug)]
pub struct UseDef {
    defs: Vec<(DefSite, Reg)>,
    defs_of_reg: Vec<Vec<u32>>,
    /// def-site bitset flowing into each block
    reach_in: Vec<BitSet>,
}

impl UseDef {
    /// Runs reaching definitions over `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let mut defs: Vec<(DefSite, Reg)> = Vec::new();
        let mut defs_of_reg: Vec<Vec<u32>> = vec![Vec::new(); func.reg_count()];
        for p in func.params() {
            defs_of_reg[p.index()].push(defs.len() as u32);
            defs.push((DefSite::Param(p), p));
        }
        for site in func.instr_sites() {
            if let Some(dst) = func.instr(site).dst() {
                defs_of_reg[dst.index()].push(defs.len() as u32);
                defs.push((DefSite::Instr(site), dst));
            }
        }
        let ndefs = defs.len();
        let nblocks = func.block_count();

        // gen/kill per block
        let mut gen = vec![BitSet::new(ndefs); nblocks];
        let mut kill = vec![BitSet::new(ndefs); nblocks];
        // Map from site to def number for quick lookup.
        let mut def_no_at: std::collections::HashMap<InstrRef, u32> =
            std::collections::HashMap::new();
        for (no, (site, _)) in defs.iter().enumerate() {
            if let DefSite::Instr(s) = site {
                def_no_at.insert(*s, no as u32);
            }
        }
        for b in func.block_ids() {
            let g = &mut gen[b.index()];
            let k = &mut kill[b.index()];
            for (i, instr) in func.block(b).instrs.iter().enumerate() {
                if let Some(dst) = instr.dst() {
                    let no = def_no_at[&InstrRef::new(b, i)];
                    // A new def of dst kills all other defs of dst.
                    for &other in &defs_of_reg[dst.index()] {
                        g.remove(other as usize);
                        k.insert(other as usize);
                    }
                    g.insert(no as usize);
                    k.remove(no as usize);
                }
            }
        }

        // in[entry] = parameter defs; iterate to fixpoint in RPO.
        let mut reach_in = vec![BitSet::new(ndefs); nblocks];
        let mut reach_out = vec![BitSet::new(ndefs); nblocks];
        for p in func.params() {
            for &no in &defs_of_reg[p.index()] {
                if matches!(defs[no as usize].0, DefSite::Param(_)) {
                    reach_in[func.entry().index()].insert(no as usize);
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                let bi = b.index();
                let mut inset = reach_in[bi].clone();
                for &p in cfg.preds(b) {
                    inset.union_with(&reach_out[p.index()]);
                }
                let mut outset = inset.clone();
                outset.subtract(&kill[bi]);
                outset.union_with(&gen[bi]);
                if inset != reach_in[bi] || outset != reach_out[bi] {
                    reach_in[bi] = inset;
                    reach_out[bi] = outset;
                    changed = true;
                }
            }
        }

        UseDef {
            defs,
            defs_of_reg,
            reach_in,
        }
    }

    /// The definitions of `reg` that reach the *use* at `site` (i.e. the
    /// program point just before the instruction executes).
    pub fn reaching_defs(&self, func: &Function, site: InstrRef, reg: Reg) -> Vec<DefSite> {
        let mut live: Vec<DefSite> = self.reach_in[site.block.index()]
            .iter()
            .filter(|&no| self.defs[no].1 == reg)
            .map(|no| self.defs[no].0)
            .collect();
        // Walk the block up to (not including) the use site; a redefinition
        // of `reg` replaces the whole set.
        for (i, instr) in func.block(site.block).instrs.iter().enumerate() {
            if i as u32 >= site.index {
                break;
            }
            if instr.dst() == Some(reg) {
                live.clear();
                live.push(DefSite::Instr(InstrRef::new(site.block, i)));
            }
        }
        live
    }

    /// If exactly one definition of `reg` reaches `site`, returns it.
    pub fn unique_reaching_def(
        &self,
        func: &Function,
        site: InstrRef,
        reg: Reg,
    ) -> Option<DefSite> {
        let d = self.reaching_defs(func, site, reg);
        if d.len() == 1 {
            Some(d[0])
        } else {
            None
        }
    }

    /// All definition sites of `reg` anywhere in the function.
    pub fn defs_of(&self, reg: Reg) -> impl Iterator<Item = DefSite> + '_ {
        self.defs_of_reg[reg.index()]
            .iter()
            .map(move |&no| self.defs[no as usize].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Instr;
    use crate::types::Ty;

    #[test]
    fn straight_line_use_def() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("f", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let one = b.const_i32(1);
        let y = b.add(x, one);
        b.ret(Some(y));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let ud = UseDef::compute(f, &cfg);
        // The add's use of `x` reaches back to the parameter.
        let add_site = f
            .instr_sites()
            .find(|&s| matches!(f.instr(s), Instr::Bin { .. }))
            .unwrap();
        assert_eq!(ud.reaching_defs(f, add_site, x), vec![DefSite::Param(x)]);
        // The add's use of `one` reaches the const site.
        let const_site = f
            .instr_sites()
            .find(|&s| matches!(f.instr(s), Instr::Const { .. }))
            .unwrap();
        assert_eq!(
            ud.reaching_defs(f, add_site, one),
            vec![DefSite::Instr(const_site)]
        );
    }

    #[test]
    fn loop_carried_defs_merge() {
        // i is defined before the loop and redefined in the body: a use in
        // the loop header sees both definitions.
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("g", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let i = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(i, z);
        b.while_(|b| b.lt(i, n), |b| b.inc(i, 1));
        b.ret(Some(i));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let ud = UseDef::compute(f, &cfg);
        // Find the comparison in the loop header.
        let cmp_site = f
            .instr_sites()
            .find(|&s| matches!(f.instr(s), Instr::Cmp { .. }))
            .unwrap();
        let defs = ud.reaching_defs(f, cmp_site, i);
        assert_eq!(defs.len(), 2, "initial move and loop-body move: {defs:?}");
    }

    #[test]
    fn redefinition_within_block_kills() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("h", &[], Some(Ty::I32));
        let a1 = b.const_i32(1);
        let v = b.new_reg(Ty::I32);
        b.move_(v, a1);
        let a2 = b.const_i32(2);
        b.move_(v, a2);
        let out = b.add(v, v);
        b.ret(Some(out));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let ud = UseDef::compute(f, &cfg);
        let add_site = f
            .instr_sites()
            .find(|&s| matches!(f.instr(s), Instr::Bin { .. }))
            .unwrap();
        let defs = ud.reaching_defs(f, add_site, v);
        assert_eq!(defs.len(), 1, "second move kills the first");
        // And it is the *second* move.
        match defs[0] {
            DefSite::Instr(s) => assert!(matches!(f.instr(s), Instr::Move { .. })),
            _ => panic!("expected instr def"),
        }
    }
}
