//! Value and storage types of the IR.

/// Type of a virtual register.
///
/// The register-level type system is deliberately small, mirroring the JVM's
/// computational types: sub-word integers are widened to `I32` when loaded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float (the only float width, like JVM `double`).
    F64,
    /// Reference to a heap object or array (or null).
    Ref,
}

impl Ty {
    /// Returns `true` for the integer types.
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I32 | Ty::I64)
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Ref => "ref",
        };
        f.write_str(s)
    }
}

/// Storage type of an instance field, static slot, or array element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemTy {
    /// 8-bit integer (loaded sign-extended to `I32`).
    I8,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
    /// Object/array reference.
    Ref,
}

impl ElemTy {
    /// Size of the element in bytes.
    pub fn size(self) -> u64 {
        match self {
            ElemTy::I8 => 1,
            ElemTy::I32 => 4,
            ElemTy::I64 | ElemTy::F64 | ElemTy::Ref => 8,
        }
    }

    /// The register type values of this element type have once loaded.
    pub fn reg_ty(self) -> Ty {
        match self {
            ElemTy::I8 | ElemTy::I32 => Ty::I32,
            ElemTy::I64 => Ty::I64,
            ElemTy::F64 => Ty::F64,
            ElemTy::Ref => Ty::Ref,
        }
    }
}

impl std::fmt::Display for ElemTy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ElemTy::I8 => "i8",
            ElemTy::I32 => "i32",
            ElemTy::I64 => "i64",
            ElemTy::F64 => "f64",
            ElemTy::Ref => "ref",
        };
        f.write_str(s)
    }
}

/// A compile-time constant.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Const {
    /// 32-bit integer constant.
    I32(i32),
    /// 64-bit integer constant.
    I64(i64),
    /// Float constant.
    F64(f64),
    /// The null reference.
    Null,
}

impl Const {
    /// The register type of this constant.
    pub fn ty(self) -> Ty {
        match self {
            Const::I32(_) => Ty::I32,
            Const::I64(_) => Ty::I64,
            Const::F64(_) => Ty::F64,
            Const::Null => Ty::Ref,
        }
    }
}

impl std::fmt::Display for Const {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Const::I32(v) => write!(f, "{v}i32"),
            Const::I64(v) => write!(f, "{v}i64"),
            Const::F64(v) => write!(f, "{v}f64"),
            Const::Null => f.write_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemTy::I8.size(), 1);
        assert_eq!(ElemTy::I32.size(), 4);
        assert_eq!(ElemTy::I64.size(), 8);
        assert_eq!(ElemTy::F64.size(), 8);
        assert_eq!(ElemTy::Ref.size(), 8);
    }

    #[test]
    fn reg_ty_widening() {
        assert_eq!(ElemTy::I8.reg_ty(), Ty::I32);
        assert_eq!(ElemTy::Ref.reg_ty(), Ty::Ref);
    }

    #[test]
    fn const_types() {
        assert_eq!(Const::I32(3).ty(), Ty::I32);
        assert_eq!(Const::Null.ty(), Ty::Ref);
        assert_eq!(Const::F64(1.5).to_string(), "1.5f64");
    }

    #[test]
    fn int_predicate() {
        assert!(Ty::I32.is_int());
        assert!(Ty::I64.is_int());
        assert!(!Ty::F64.is_int());
        assert!(!Ty::Ref.is_int());
    }
}
