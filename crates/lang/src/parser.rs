//! Recursive-descent parser.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::{lex, Tok, Token};

const KEYWORDS: &[&str] = &[
    "class", "static", "int", "long", "double", "byte", "void", "if", "else", "while", "for",
    "break", "continue", "return", "new", "null",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parses a compilation unit.
///
/// # Errors
///
/// Returns the first syntax error with its position.
pub fn parse(src: &str) -> Result<Unit, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.unit()
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        let t = self.peek();
        LangError::new(msg, t.line, t.col)
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), LangError> {
        match &self.peek().tok {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other:?}"))),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().tok, Tok::Punct(q) if *q == p)
    }

    fn eat_if_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), LangError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match &self.peek().tok {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn unit(&mut self) -> Result<Unit, LangError> {
        let mut unit = Unit::default();
        while self.peek().tok != Tok::Eof {
            if self.at_kw("class") {
                unit.classes.push(self.class_decl()?);
            } else if self.at_kw("static") {
                self.bump();
                let ty = self.type_expr()?;
                let name = self.ident()?;
                self.eat_punct(";")?;
                unit.statics.push(StaticDecl { ty, name });
            } else {
                unit.funcs.push(self.func_decl()?);
            }
        }
        Ok(unit)
    }

    fn class_decl(&mut self) -> Result<ClassDecl, LangError> {
        self.eat_kw("class")?;
        let name = self.ident()?;
        self.eat_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_if_punct("}") {
            let ty = self.type_expr()?;
            let fname = self.ident()?;
            self.eat_punct(";")?;
            fields.push(FieldDecl { ty, name: fname });
        }
        Ok(ClassDecl { name, fields })
    }

    /// A type: base then any number of `[]` suffixes.
    fn type_expr(&mut self) -> Result<TypeExpr, LangError> {
        let base = match &self.peek().tok {
            Tok::Ident(s) => match s.as_str() {
                "int" => {
                    self.bump();
                    TypeExpr::Int
                }
                "long" => {
                    self.bump();
                    TypeExpr::Long
                }
                "double" => {
                    self.bump();
                    TypeExpr::Double
                }
                "byte" => {
                    self.bump();
                    TypeExpr::Byte
                }
                "void" => {
                    self.bump();
                    TypeExpr::Void
                }
                _ => TypeExpr::Class(self.ident()?),
            },
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        let mut ty = base;
        while self.at_punct("[") && matches!(self.toks[self.pos + 1].tok, Tok::Punct("]")) {
            self.bump();
            self.bump();
            ty = TypeExpr::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn func_decl(&mut self) -> Result<FuncDecl, LangError> {
        let ret = self.type_expr()?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                let ty = self.type_expr()?;
                let pname = self.ident()?;
                params.push((ty, pname));
                if !self.eat_if_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let body = self.block()?;
        Ok(FuncDecl {
            ret,
            name,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_if_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn looks_like_decl(&self) -> bool {
        // A declaration starts with a type keyword, or `Ident Ident`, or
        // `Ident [ ] Ident…`.
        match &self.peek().tok {
            Tok::Ident(s) if ["int", "long", "double", "byte"].contains(&s.as_str()) => true,
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                // Class-typed declaration: `C x …` or `C[] x …`.
                let mut i = self.pos + 1;
                while matches!(self.toks[i].tok, Tok::Punct("["))
                    && matches!(self.toks[i + 1].tok, Tok::Punct("]"))
                {
                    i += 2;
                }
                matches!(&self.toks[i].tok, Tok::Ident(t) if !KEYWORDS.contains(&t.as_str()))
            }
            _ => false,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        if self.at_kw("if") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let then = self.stmt_or_block()?;
            let els = if self.at_kw("else") {
                self.bump();
                self.stmt_or_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.at_kw("while") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.at_kw("for") {
            self.bump();
            self.eat_punct("(")?;
            let init = self.simple_stmt()?; // consumes its `;`
            let cond = self.expr()?;
            self.eat_punct(";")?;
            let update = self.simple_stmt_no_semi()?;
            self.eat_punct(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::For(Box::new(init), cond, Box::new(update), body));
        }
        if self.at_kw("break") {
            self.bump();
            self.eat_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.at_kw("continue") {
            self.bump();
            self.eat_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.at_kw("return") {
            self.bump();
            if self.eat_if_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        self.simple_stmt()
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, LangError> {
        if self.at_punct("{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Declaration, assignment, or expression statement, ending in `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let s = self.simple_stmt_no_semi()?;
        self.eat_punct(";")?;
        Ok(s)
    }

    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, LangError> {
        if self.looks_like_decl() {
            let ty = self.type_expr()?;
            let name = self.ident()?;
            let init = if self.eat_if_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Let(ty, name, init));
        }
        let lhs = self.expr()?;
        if self.eat_if_punct("=") {
            let rhs = self.expr()?;
            return Ok(Stmt::Assign(lhs, rhs));
        }
        Ok(Stmt::Expr(lhs))
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match &self.peek().tok {
                Tok::Punct("||") => (BinOp::Or, 1),
                Tok::Punct("&&") => (BinOp::And, 2),
                Tok::Punct("|") => (BinOp::BitOr, 3),
                Tok::Punct("^") => (BinOp::BitXor, 4),
                Tok::Punct("&") => (BinOp::BitAnd, 5),
                Tok::Punct("==") => (BinOp::Eq, 6),
                Tok::Punct("!=") => (BinOp::Ne, 6),
                Tok::Punct("<") => (BinOp::Lt, 7),
                Tok::Punct("<=") => (BinOp::Le, 7),
                Tok::Punct(">") => (BinOp::Gt, 7),
                Tok::Punct(">=") => (BinOp::Ge, 7),
                Tok::Punct("<<") => (BinOp::Shl, 8),
                Tok::Punct(">>") => (BinOp::Shr, 8),
                Tok::Punct("+") => (BinOp::Add, 9),
                Tok::Punct("-") => (BinOp::Sub, 9),
                Tok::Punct("*") => (BinOp::Mul, 10),
                Tok::Punct("/") => (BinOp::Div, 10),
                Tok::Punct("%") => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let t = self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                line: t.line,
                col: t.col,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let t = self.peek().clone();
        if self.eat_if_punct("-") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
                line: t.line,
                col: t.col,
            });
        }
        if self.eat_if_punct("!") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnOp::Not, Box::new(e)),
                line: t.line,
                col: t.col,
            });
        }
        // Cast: `( int|long|double ) unary`
        if self.at_punct("(") {
            if let Tok::Ident(s) = &self.toks[self.pos + 1].tok {
                if ["int", "long", "double"].contains(&s.as_str())
                    && matches!(self.toks[self.pos + 2].tok, Tok::Punct(")"))
                {
                    self.bump();
                    let ty = self.type_expr()?;
                    self.eat_punct(")")?;
                    let e = self.unary()?;
                    return Ok(Expr {
                        kind: ExprKind::Cast(ty, Box::new(e)),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        loop {
            let t = self.peek().clone();
            if self.eat_if_punct(".") {
                let name = self.ident()?;
                e = Expr {
                    kind: ExprKind::Field(Box::new(e), name),
                    line: t.line,
                    col: t.col,
                };
            } else if self.eat_if_punct("[") {
                let idx = self.expr()?;
                self.eat_punct("]")?;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    line: t.line,
                    col: t.col,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(*v),
                    line: t.line,
                    col: t.col,
                })
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Float(*v),
                    line: t.line,
                    col: t.col,
                })
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Tok::Ident(s) if s == "null" => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Null,
                    line: t.line,
                    col: t.col,
                })
            }
            Tok::Ident(s) if s == "new" => {
                self.bump();
                let base = self.type_expr()?;
                if self.eat_if_punct("(") {
                    self.eat_punct(")")?;
                    let name = match base {
                        TypeExpr::Class(n) => n,
                        _ => return Err(self.err("`new` with () requires a class")),
                    };
                    return Ok(Expr {
                        kind: ExprKind::New(name),
                        line: t.line,
                        col: t.col,
                    });
                }
                self.eat_punct("[")?;
                let len = self.expr()?;
                self.eat_punct("]")?;
                Ok(Expr {
                    kind: ExprKind::NewArray(base, Box::new(len)),
                    line: t.line,
                    col: t.col,
                })
            }
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                let name = self.ident()?;
                if self.eat_if_punct("(") {
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_if_punct(",") {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    return Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line: t.line,
                        col: t.col,
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Var(name),
                    line: t.line,
                    col: t.col,
                })
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_and_function() {
        let unit = parse(
            "class Token { int size; int[] facts; }
             static int seed;
             int sum(Token[] v, int n) {
                 int acc = 0;
                 for (int i = 0; i < n; i = i + 1) {
                     Token t = v[i];
                     acc = acc + t.size;
                 }
                 return acc;
             }",
        )
        .unwrap();
        assert_eq!(unit.classes.len(), 1);
        assert_eq!(unit.classes[0].fields.len(), 2);
        assert_eq!(unit.statics.len(), 1);
        assert_eq!(unit.funcs.len(), 1);
        assert_eq!(unit.funcs[0].params.len(), 2);
        assert_eq!(unit.funcs[0].body.len(), 3);
    }

    #[test]
    fn precedence() {
        let unit = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(e)) = &unit.funcs[0].body[0] else {
            panic!()
        };
        // + at the top, * nested on the right.
        let ExprKind::Bin(BinOp::Add, _, rhs) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn postfix_chains() {
        let unit = parse("int f(Token t) { return t.facts[0]; }").unwrap();
        let Stmt::Return(Some(e)) = &unit.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Index(..)));
    }

    #[test]
    fn new_expressions() {
        let unit = parse("void f() { Token t = new Token(); int[] a = new int[10]; }");
        let unit = unit.unwrap();
        assert_eq!(unit.funcs[0].body.len(), 2);
    }

    #[test]
    fn while_break_continue() {
        let unit = parse("void f(int n) { while (1) { if (n > 3) break; continue; } }").unwrap();
        let Stmt::While(_, body) = &unit.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn cast() {
        let unit = parse("double f(int x) { return (double) x; }").unwrap();
        let Stmt::Return(Some(e)) = &unit.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Cast(TypeExpr::Double, _)));
    }

    #[test]
    fn syntax_error_has_position() {
        let err = parse("int f() { return ; + }").unwrap_err();
        assert!(err.line() >= 1);
    }
}
