//! Abstract syntax tree.

/// A source type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `long`
    Long,
    /// `double`
    Double,
    /// `byte` (storage type; expressions widen to `int`)
    Byte,
    /// `void` (function returns only)
    Void,
    /// A class name.
    Class(String),
    /// `T[]`
    Array(Box<TypeExpr>),
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression, annotated with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Expression kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `null`.
    Null,
    /// Variable reference.
    Var(String),
    /// `expr.field`, or `expr.length` for arrays.
    Field(Box<Expr>, String),
    /// `expr[expr]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// `new C()`.
    New(String),
    /// `new T[expr]`.
    NewArray(TypeExpr, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `(long) e`, `(int) e`, `(double) e` — numeric cast.
    Cast(TypeExpr, Box<Expr>),
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `T name = init;`
    Let(TypeExpr, String, Option<Expr>),
    /// `lvalue = expr;`
    Assign(Expr, Expr),
    /// Expression statement (a call).
    Expr(Expr),
    /// `if (cond) then else els`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) body`
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; update) body`
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return expr?;`
    Return(Option<Expr>),
}

/// A field declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct FieldDecl {
    /// Field type.
    pub ty: TypeExpr,
    /// Field name.
    pub name: String,
}

/// A class declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Fields in declaration (= layout) order.
    pub fields: Vec<FieldDecl>,
}

/// A function declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct FuncDecl {
    /// Return type (`Void` for none).
    pub ret: TypeExpr,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(TypeExpr, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A static variable declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct StaticDecl {
    /// Static type.
    pub ty: TypeExpr,
    /// Name.
    pub name: String,
}

/// A parsed compilation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Unit {
    /// Classes.
    pub classes: Vec<ClassDecl>,
    /// Statics.
    pub statics: Vec<StaticDecl>,
    /// Functions.
    pub funcs: Vec<FuncDecl>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_expr_equality() {
        assert_eq!(
            TypeExpr::Array(Box::new(TypeExpr::Int)),
            TypeExpr::Array(Box::new(TypeExpr::Int))
        );
        assert_ne!(TypeExpr::Int, TypeExpr::Long);
    }
}
