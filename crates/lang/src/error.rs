//! Front-end errors with source positions.

/// A lexing, parsing, or type error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LangError {
    msg: String,
    line: u32,
    col: u32,
}

impl LangError {
    pub(crate) fn new(msg: impl Into<String>, line: u32, col: u32) -> Self {
        LangError {
            msg: msg.into(),
            line,
            col,
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based source column of the error.
    pub fn column(&self) -> u32 {
        self.col
    }

    /// The message without position.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::new("unexpected token", 3, 7);
        assert_eq!(e.to_string(), "3:7: unexpected token");
        assert_eq!(e.line(), 3);
        assert_eq!(e.column(), 7);
    }
}
