//! A miniature Java-like frontend that lowers to the `spf-ir` register IR.
//!
//! The paper's system compiles Java; writing workloads directly against the
//! IR builder is precise but verbose. This crate provides a small,
//! statically typed, class-based source language — enough to express the
//! benchmark kernels readably:
//!
//! ```
//! let program = spf_lang::compile(
//!     "class Token { int size; int[] facts; }
//!      int sum(Token[] v, int n) {
//!          int acc = 0;
//!          for (int i = 0; i < n; i = i + 1) {
//!              Token t = v[i];
//!              acc = acc + t.size;
//!          }
//!          return acc;
//!      }",
//! ).expect("compiles");
//! assert!(program.method_by_name("sum").is_some());
//! ```
//!
//! Use [`compile`] to turn source text into an [`spf_ir::Program`].
//!
//! The language: `int`/`long`/`double`/`byte` primitives, classes with
//! fields, one-dimensional arrays, statics, functions (no methods — the IR
//! has direct calls only), `if`/`else`, `while`, `for`, `break`,
//! `continue`, `return`, `new C()`, `new T[n]`, `.length`, and the usual
//! operators. Semantics follow the IR: wrapping integer arithmetic,
//! null/bounds checks at run time.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::LangError;
pub use lower::compile;
