//! Hand-written lexer.

use crate::error::LangError;

/// A token kind with its payload.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal (decimal or 0x…).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation or operator, e.g. `"+"`, `"=="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

const PUNCTS2: &[&str] = &["==", "!=", "<=", ">=", "&&", "||", "<<", ">>"];
const PUNCTS1: &[&str] = &[
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "(", ")", "{", "}", "[", "]", ";",
    ",", ".",
];

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`LangError`] on malformed literals or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments: // … and /* … */
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            i += 2;
            col += 2;
            while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
            if i + 1 >= n {
                return Err(LangError::new("unterminated block comment", line, col));
            }
            i += 2;
            col += 2;
            continue;
        }
        let (tline, tcol) = (line, col);
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
                col += 1;
            }
            let s: String = bytes[start..i].iter().collect();
            out.push(Token {
                tok: Tok::Ident(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                i += 2;
                col += 2;
                while i < n && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                    col += 1;
                }
                let s: String = bytes[start + 2..i].iter().collect();
                let v = i64::from_str_radix(&s, 16)
                    .map_err(|_| LangError::new("bad hex literal", tline, tcol))?;
                out.push(Token {
                    tok: Tok::Int(v),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            while i < n && bytes[i].is_ascii_digit() {
                i += 1;
                col += 1;
            }
            if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                col += 1;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
            }
            let s: String = bytes[start..i].iter().collect();
            let tok = if is_float {
                Tok::Float(
                    s.parse()
                        .map_err(|_| LangError::new("bad float literal", tline, tcol))?,
                )
            } else {
                Tok::Int(
                    s.parse()
                        .map_err(|_| LangError::new("bad int literal", tline, tcol))?,
                )
            };
            out.push(Token {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Two-char then one-char punctuation.
        let two: String = bytes[i..(i + 2).min(n)].iter().collect();
        if let Some(&p) = PUNCTS2.iter().find(|&&p| p == two) {
            out.push(Token {
                tok: Tok::Punct(p),
                line: tline,
                col: tcol,
            });
            i += 2;
            col += 2;
            continue;
        }
        let one = c.to_string();
        if let Some(&p) = PUNCTS1.iter().find(|&&p| p == one) {
            out.push(Token {
                tok: Tok::Punct(p),
                line: tline,
                col: tcol,
            });
            i += 1;
            col += 1;
            continue;
        }
        return Err(LangError::new(
            format!("unexpected character {c:?}"),
            tline,
            tcol,
        ));
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("int x = 42 + y2;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct("+"),
                Tok::Ident("y2".into()),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn floats_and_hex() {
        assert_eq!(
            kinds("1.5 0x10"),
            vec![Tok::Float(1.5), Tok::Int(16), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n /* block\n */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b == c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("=="),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_char_is_an_error() {
        assert!(lex("a @ b").is_err());
        assert!(lex("/* oops").is_err());
    }
}
