//! Type checking and lowering to the IR.

use std::collections::HashMap;

use spf_ir::{
    ClassId, CmpOp, Conv, ElemTy, FieldId, FunctionBuilder, MethodId, Program, ProgramBuilder, Reg,
    StaticId, Ty,
};

use crate::ast::{self, Expr, ExprKind, FuncDecl, Stmt, TypeExpr, Unit};
use crate::error::LangError;
use crate::parser::parse;

/// A checked source-level type.
#[derive(Clone, PartialEq, Debug)]
enum LTy {
    Int,
    Long,
    Double,
    /// `byte` — a storage type; loading one yields `Int`.
    Byte,
    Class(ClassId),
    Array(Box<LTy>),
    /// The type of `null`, assignable to any reference type.
    Null,
    Void,
}

impl LTy {
    fn reg_ty(&self) -> Ty {
        match self {
            LTy::Int | LTy::Byte => Ty::I32,
            LTy::Long => Ty::I64,
            LTy::Double => Ty::F64,
            LTy::Class(_) | LTy::Array(_) | LTy::Null => Ty::Ref,
            LTy::Void => panic!("void has no register type"),
        }
    }

    fn elem_ty(&self) -> ElemTy {
        match self {
            LTy::Int => ElemTy::I32,
            LTy::Byte => ElemTy::I8,
            LTy::Long => ElemTy::I64,
            LTy::Double => ElemTy::F64,
            LTy::Class(_) | LTy::Array(_) | LTy::Null => ElemTy::Ref,
            LTy::Void => panic!("void has no storage type"),
        }
    }

    fn is_ref(&self) -> bool {
        matches!(self, LTy::Class(_) | LTy::Array(_) | LTy::Null)
    }

    fn display(&self) -> String {
        match self {
            LTy::Int => "int".into(),
            LTy::Byte => "byte".into(),
            LTy::Long => "long".into(),
            LTy::Double => "double".into(),
            LTy::Class(c) => format!("class#{}", c.index()),
            LTy::Array(e) => format!("{}[]", e.display()),
            LTy::Null => "null".into(),
            LTy::Void => "void".into(),
        }
    }
}

struct Signatures {
    classes: HashMap<String, ClassId>,
    fields: HashMap<(ClassId, String), (FieldId, LTy)>,
    statics: HashMap<String, (StaticId, LTy)>,
    funcs: HashMap<String, (MethodId, Vec<LTy>, LTy)>,
}

/// Compiles source text to a [`Program`]; function names become method
/// names (look them up with [`Program::method_by_name`]).
///
/// # Errors
///
/// Returns the first syntax or type error with its source position.
pub fn compile(src: &str) -> Result<Program, LangError> {
    let unit = parse(src)?;
    let mut pb = ProgramBuilder::new();
    let sigs = declare(&mut pb, &unit)?;
    for f in &unit.funcs {
        lower_func(&mut pb, &sigs, f)?;
    }
    Ok(pb.finish())
}

fn resolve_ty(
    classes: &HashMap<String, ClassId>,
    ty: &TypeExpr,
    line: u32,
    col: u32,
) -> Result<LTy, LangError> {
    Ok(match ty {
        TypeExpr::Int => LTy::Int,
        TypeExpr::Long => LTy::Long,
        TypeExpr::Double => LTy::Double,
        TypeExpr::Byte => LTy::Byte,
        TypeExpr::Void => LTy::Void,
        TypeExpr::Class(name) => LTy::Class(
            *classes
                .get(name)
                .ok_or_else(|| LangError::new(format!("unknown class `{name}`"), line, col))?,
        ),
        TypeExpr::Array(inner) => LTy::Array(Box::new(resolve_ty(classes, inner, line, col)?)),
    })
}

fn declare(pb: &mut ProgramBuilder, unit: &Unit) -> Result<Signatures, LangError> {
    // Class names first (fields may reference classes declared later).
    let mut class_names: HashMap<String, ClassId> = HashMap::new();
    for (i, c) in unit.classes.iter().enumerate() {
        if class_names
            .insert(c.name.clone(), ClassId::new(i))
            .is_some()
        {
            return Err(LangError::new(
                format!("duplicate class `{}`", c.name),
                1,
                1,
            ));
        }
    }
    let mut fields = HashMap::new();
    for c in &unit.classes {
        let decl: Vec<(&str, ElemTy)> = c
            .fields
            .iter()
            .map(|f| {
                let lty = resolve_ty(&class_names, &f.ty, 1, 1)?;
                if lty == LTy::Void {
                    return Err(LangError::new("field cannot be void", 1, 1));
                }
                Ok((f.name.as_str(), lty.elem_ty()))
            })
            .collect::<Result<_, LangError>>()?;
        let (cid, fids) = pb.add_class(&c.name, &decl);
        debug_assert_eq!(Some(&cid), class_names.get(&c.name));
        for (f, fid) in c.fields.iter().zip(fids) {
            let lty = resolve_ty(&class_names, &f.ty, 1, 1)?;
            fields.insert((cid, f.name.clone()), (fid, lty));
        }
    }
    let mut statics = HashMap::new();
    for s in &unit.statics {
        let lty = resolve_ty(&class_names, &s.ty, 1, 1)?;
        if lty == LTy::Void {
            return Err(LangError::new("static cannot be void", 1, 1));
        }
        let sid = pb.add_static(&s.name, lty.elem_ty());
        statics.insert(s.name.clone(), (sid, lty));
    }
    let mut funcs = HashMap::new();
    for f in &unit.funcs {
        let ret = resolve_ty(&class_names, &f.ret, 1, 1)?;
        let params: Vec<LTy> = f
            .params
            .iter()
            .map(|(ty, _)| resolve_ty(&class_names, ty, 1, 1))
            .collect::<Result<_, _>>()?;
        let param_tys: Vec<Ty> = params.iter().map(LTy::reg_ty).collect();
        let ret_ty = if ret == LTy::Void {
            None
        } else {
            Some(ret.reg_ty())
        };
        let mid = pb.declare(&f.name, &param_tys, ret_ty);
        if funcs.insert(f.name.clone(), (mid, params, ret)).is_some() {
            return Err(LangError::new(
                format!("duplicate function `{}`", f.name),
                1,
                1,
            ));
        }
    }
    Ok(Signatures {
        classes: class_names,
        fields,
        statics,
        funcs,
    })
}

struct Lowerer<'a, 'b> {
    b: &'a mut FunctionBuilder<'b>,
    sigs: &'a Signatures,
    scopes: Vec<HashMap<String, (Reg, LTy)>>,
    ret: LTy,
}

fn lower_func(pb: &mut ProgramBuilder, sigs: &Signatures, f: &FuncDecl) -> Result<(), LangError> {
    let (mid, params, ret) = sigs.funcs[&f.name].clone();
    let mut b = pb.define(mid);
    let mut scope = HashMap::new();
    for (i, ((_, name), lty)) in f.params.iter().zip(&params).enumerate() {
        scope.insert(name.clone(), (b.param(i), lty.clone()));
    }
    let mut lw = Lowerer {
        b: &mut b,
        sigs,
        scopes: vec![scope],
        ret,
    };
    lw.stmts(&f.body)?;
    if lw.ret == LTy::Void {
        // finish() terminates the trailing block with `ret` for void fns.
    }
    b.finish();
    Ok(())
}

impl Lowerer<'_, '_> {
    fn err(&self, msg: impl Into<String>, e: &Expr) -> LangError {
        LangError::new(msg, e.line, e.col)
    }

    fn lookup(&self, name: &str) -> Option<(Reg, LTy)> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).cloned()
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    /// Widens `v` from `from` to `to` if needed; errors when incompatible.
    fn coerce(&mut self, v: Reg, from: &LTy, to: &LTy, at: &Expr) -> Result<Reg, LangError> {
        if from == to
            || (from == &LTy::Byte && to == &LTy::Int)
            || (from == &LTy::Int && to == &LTy::Byte)
        {
            return Ok(v);
        }
        Ok(match (from, to) {
            (LTy::Int, LTy::Long) => self.b.convert(Conv::I32ToI64, v),
            (LTy::Int, LTy::Double) => self.b.convert(Conv::I32ToF64, v),
            (LTy::Long, LTy::Double) => self.b.convert(Conv::I64ToF64, v),
            (LTy::Null, t) if t.is_ref() => v,
            _ => {
                return Err(self.err(
                    format!("cannot convert {} to {}", from.display(), to.display()),
                    at,
                ))
            }
        })
    }

    /// Numeric promotion for binary operands; returns the common type.
    fn promote(
        &mut self,
        a: Reg,
        at: &LTy,
        b: Reg,
        bt: &LTy,
        e: &Expr,
    ) -> Result<(Reg, Reg, LTy), LangError> {
        let common = match (at, bt) {
            (LTy::Double, _) | (_, LTy::Double) => LTy::Double,
            (LTy::Long, _) | (_, LTy::Long) => LTy::Long,
            _ => LTy::Int,
        };
        let a2 = self.coerce(a, at, &common, e)?;
        let b2 = self.coerce(b, bt, &common, e)?;
        Ok((a2, b2, common))
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::Let(ty, name, init) => {
                let lty = resolve_ty(&self.sigs.classes, ty, 1, 1)?;
                if lty == LTy::Void {
                    return Err(LangError::new("variable cannot be void", 1, 1));
                }
                let reg = self.b.new_reg(lty.reg_ty());
                if let Some(e) = init {
                    let (v, vt) = self.expr(e)?;
                    let v = self.coerce(v, &vt, &lty, e)?;
                    self.b.move_(reg, v);
                } else {
                    // Zero-initialize like a JVM local.
                    let z = match lty.reg_ty() {
                        Ty::I32 => self.b.const_i32(0),
                        Ty::I64 => self.b.const_i64(0),
                        Ty::F64 => self.b.const_f64(0.0),
                        Ty::Ref => self.b.null(),
                    };
                    self.b.move_(reg, z);
                }
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), (reg, lty));
                Ok(())
            }
            Stmt::Assign(lhs, rhs) => self.assign(lhs, rhs),
            Stmt::Expr(e) => {
                if let ExprKind::Call(name, args) = &e.kind {
                    self.call(name, args, e, true)?;
                    Ok(())
                } else {
                    let _ = self.expr(e)?;
                    Ok(())
                }
            }
            Stmt::If(cond, then, els) => {
                let c = self.cond(cond)?;
                // Lower both arms with fresh scopes; closures need to call
                // back into self, so inline the scope management.
                if els.is_empty() {
                    let then_bb = self.b.create_block();
                    let join = self.b.create_block();
                    self.b.branch(c, then_bb, join);
                    self.b.switch_to(then_bb);
                    self.stmts(then)?;
                    self.b.jump(join);
                    self.b.switch_to(join);
                    Ok(())
                } else {
                    let then_bb = self.b.create_block();
                    let else_bb = self.b.create_block();
                    let join = self.b.create_block();
                    self.b.branch(c, then_bb, else_bb);
                    self.b.switch_to(then_bb);
                    self.stmts(then)?;
                    self.b.jump(join);
                    self.b.switch_to(else_bb);
                    self.stmts(els)?;
                    self.b.jump(join);
                    self.b.switch_to(join);
                    Ok(())
                }
            }
            Stmt::While(cond, body) => self.lower_loop(None, cond, None, body),
            Stmt::For(init, cond, update, body) => {
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                let r = self.lower_loop(None, cond, Some(update), body);
                self.scopes.pop();
                r
            }
            Stmt::Break => {
                self.b.break_(0);
                Ok(())
            }
            Stmt::Continue => {
                self.b.continue_(0);
                Ok(())
            }
            Stmt::Return(None) => {
                if self.ret != LTy::Void {
                    return Err(LangError::new("missing return value", 1, 1));
                }
                self.b.ret(None);
                Ok(())
            }
            Stmt::Return(Some(e)) => {
                let (v, vt) = self.expr(e)?;
                let ret = self.ret.clone();
                let v = self.coerce(v, &vt, &ret, e)?;
                self.b.ret(Some(v));
                Ok(())
            }
        }
    }

    /// Lowers a while/for loop without closing over `self` in closures
    /// (manual block management mirrors `FunctionBuilder::loop_with_update`).
    fn lower_loop(
        &mut self,
        _pre: Option<()>,
        cond: &Expr,
        update: Option<&Stmt>,
        body: &[Stmt],
    ) -> Result<(), LangError> {
        let head = self.b.create_block();
        let body_bb = self.b.create_block();
        let update_bb = self.b.create_block();
        let exit = self.b.create_block();
        self.b.jump(head);
        self.b.switch_to(head);
        let c = self.cond(cond)?;
        self.b.branch(c, body_bb, exit);
        self.b.switch_to(body_bb);
        self.b.push_loop_ctx(update_bb, exit);
        let body_result = self.stmts(body);
        self.b.pop_loop_ctx();
        body_result?;
        self.b.jump(update_bb);
        self.b.switch_to(update_bb);
        if let Some(u) = update {
            self.stmt(u)?;
        }
        self.b.jump(head);
        self.b.switch_to(exit);
        Ok(())
    }

    /// Lowers `e` as a branch condition (must be `int`).
    fn cond(&mut self, e: &Expr) -> Result<Reg, LangError> {
        let (v, t) = self.expr(e)?;
        match t {
            LTy::Int | LTy::Byte => Ok(v),
            other => Err(self.err(
                format!("condition must be int, found {}", other.display()),
                e,
            )),
        }
    }

    fn assign(&mut self, lhs: &Expr, rhs: &Expr) -> Result<(), LangError> {
        match &lhs.kind {
            ExprKind::Var(name) => {
                let (reg, lty) = self
                    .lookup(name)
                    .map(|x| (Some(x.0), Some(x.1)))
                    .unwrap_or((None, None));
                if let (Some(reg), Some(lty)) = (reg, lty) {
                    let (v, vt) = self.expr(rhs)?;
                    let v = self.coerce(v, &vt, &lty, rhs)?;
                    self.b.move_(reg, v);
                    return Ok(());
                }
                if let Some((sid, lty)) = self.sigs.statics.get(name).cloned() {
                    let (v, vt) = self.expr(rhs)?;
                    let v = self.coerce(v, &vt, &lty, rhs)?;
                    self.b.putstatic(sid, v);
                    return Ok(());
                }
                Err(self.err(format!("unknown variable `{name}`"), lhs))
            }
            ExprKind::Field(obj, fname) => {
                let (oreg, oty) = self.expr(obj)?;
                let LTy::Class(cid) = oty else {
                    return Err(self.err("field store on non-object", lhs));
                };
                let (fid, fty) = self
                    .sigs
                    .fields
                    .get(&(cid, fname.clone()))
                    .cloned()
                    .ok_or_else(|| self.err(format!("unknown field `{fname}`"), lhs))?;
                let (v, vt) = self.expr(rhs)?;
                let v = self.coerce(v, &vt, &fty, rhs)?;
                self.b.putfield(oreg, fid, v);
                Ok(())
            }
            ExprKind::Index(arr, idx) => {
                let (areg, aty) = self.expr(arr)?;
                let LTy::Array(elem) = aty else {
                    return Err(self.err("indexing a non-array", lhs));
                };
                let (ireg, ity) = self.expr(idx)?;
                if !matches!(ity, LTy::Int | LTy::Byte) {
                    return Err(self.err("array index must be int", lhs));
                }
                let (v, vt) = self.expr(rhs)?;
                let v = self.coerce(v, &vt, &elem, rhs)?;
                self.b.astore(areg, ireg, v, elem.elem_ty());
                Ok(())
            }
            _ => Err(self.err("invalid assignment target", lhs)),
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        e: &Expr,
        allow_void: bool,
    ) -> Result<Option<(Reg, LTy)>, LangError> {
        let (mid, params, ret) = self
            .sigs
            .funcs
            .get(name)
            .cloned()
            .ok_or_else(|| self.err(format!("unknown function `{name}`"), e))?;
        if args.len() != params.len() {
            return Err(self.err(
                format!(
                    "`{name}` takes {} arguments, got {}",
                    params.len(),
                    args.len()
                ),
                e,
            ));
        }
        let mut regs = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&params) {
            let (v, vt) = self.expr(a)?;
            regs.push(self.coerce(v, &vt, pty, a)?);
        }
        if ret == LTy::Void {
            if !allow_void {
                return Err(self.err(format!("`{name}` returns no value"), e));
            }
            self.b.call_void(mid, &regs);
            Ok(None)
        } else {
            let r = self.b.call(mid, &regs);
            Ok(Some((r, ret)))
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(Reg, LTy), LangError> {
        match &e.kind {
            ExprKind::Int(v) => {
                if let Ok(v32) = i32::try_from(*v) {
                    Ok((self.b.const_i32(v32), LTy::Int))
                } else {
                    Ok((self.b.const_i64(*v), LTy::Long))
                }
            }
            ExprKind::Float(v) => Ok((self.b.const_f64(*v), LTy::Double)),
            ExprKind::Null => Ok((self.b.null(), LTy::Null)),
            ExprKind::Var(name) => {
                if let Some((reg, lty)) = self.lookup(name) {
                    return Ok((reg, lty));
                }
                if let Some((sid, lty)) = self.sigs.statics.get(name).cloned() {
                    let v = self.b.getstatic(sid);
                    let lty = if lty == LTy::Byte { LTy::Int } else { lty };
                    return Ok((v, lty));
                }
                Err(self.err(format!("unknown variable `{name}`"), e))
            }
            ExprKind::Field(obj, fname) => {
                let (oreg, oty) = self.expr(obj)?;
                match oty {
                    LTy::Array(_) if fname == "length" => Ok((self.b.arraylen(oreg), LTy::Int)),
                    LTy::Class(cid) => {
                        let (fid, fty) = self
                            .sigs
                            .fields
                            .get(&(cid, fname.clone()))
                            .cloned()
                            .ok_or_else(|| self.err(format!("unknown field `{fname}`"), e))?;
                        let v = self.b.getfield(oreg, fid);
                        let fty = if fty == LTy::Byte { LTy::Int } else { fty };
                        Ok((v, fty))
                    }
                    other => Err(self.err(format!("field access on {}", other.display()), e)),
                }
            }
            ExprKind::Index(arr, idx) => {
                let (areg, aty) = self.expr(arr)?;
                let LTy::Array(elem) = aty else {
                    return Err(self.err("indexing a non-array", e));
                };
                let (ireg, ity) = self.expr(idx)?;
                if !matches!(ity, LTy::Int | LTy::Byte) {
                    return Err(self.err("array index must be int", e));
                }
                let v = self.b.aload(areg, ireg, elem.elem_ty());
                let lty = if *elem == LTy::Byte { LTy::Int } else { *elem };
                Ok((v, lty))
            }
            ExprKind::Call(name, args) => self
                .call(name, args, e, false)?
                .ok_or_else(|| self.err("void call in expression", e)),
            ExprKind::New(cname) => {
                let cid = *self
                    .sigs
                    .classes
                    .get(cname)
                    .ok_or_else(|| self.err(format!("unknown class `{cname}`"), e))?;
                Ok((self.b.new_object(cid), LTy::Class(cid)))
            }
            ExprKind::NewArray(ty, len) => {
                let elem = resolve_ty(&self.sigs.classes, ty, e.line, e.col)?;
                if elem == LTy::Void {
                    return Err(self.err("array of void", e));
                }
                let (lreg, lt) = self.expr(len)?;
                if !matches!(lt, LTy::Int | LTy::Byte) {
                    return Err(self.err("array length must be int", e));
                }
                let r = self.b.new_array(elem.elem_ty(), lreg);
                Ok((r, LTy::Array(Box::new(elem))))
            }
            ExprKind::Un(op, inner) => {
                let (v, t) = self.expr(inner)?;
                match op {
                    ast::UnOp::Neg => {
                        if t.is_ref() || t == LTy::Void {
                            return Err(self.err("negating a non-number", e));
                        }
                        Ok((self.b.un(spf_ir::UnOp::Neg, v), t))
                    }
                    ast::UnOp::Not => {
                        // Logical not: (v == 0) as int.
                        if !matches!(t, LTy::Int | LTy::Byte) {
                            return Err(self.err("`!` requires int", e));
                        }
                        let z = self.b.const_i32(0);
                        Ok((self.b.eq(v, z), LTy::Int))
                    }
                }
            }
            ExprKind::Cast(ty, inner) => {
                let target = resolve_ty(&self.sigs.classes, ty, e.line, e.col)?;
                let (v, t) = self.expr(inner)?;
                let out = match (&t, &target) {
                    (a, b) if a == b => v,
                    (LTy::Int, LTy::Long) => self.b.convert(Conv::I32ToI64, v),
                    (LTy::Int, LTy::Double) => self.b.convert(Conv::I32ToF64, v),
                    (LTy::Long, LTy::Int) => self.b.convert(Conv::I64ToI32, v),
                    (LTy::Long, LTy::Double) => self.b.convert(Conv::I64ToF64, v),
                    (LTy::Double, LTy::Int) => self.b.convert(Conv::F64ToI32, v),
                    (LTy::Double, LTy::Long) => self.b.convert(Conv::F64ToI64, v),
                    (LTy::Byte, LTy::Int) => v,
                    _ => {
                        return Err(self.err(
                            format!("cannot cast {} to {}", t.display(), target.display()),
                            e,
                        ))
                    }
                };
                Ok((out, target))
            }
            ExprKind::Bin(op, lhs, rhs) => self.bin(*op, lhs, rhs, e),
        }
    }

    fn bin(
        &mut self,
        op: ast::BinOp,
        lhs: &Expr,
        rhs: &Expr,
        e: &Expr,
    ) -> Result<(Reg, LTy), LangError> {
        use ast::BinOp as B;
        // Short-circuit && and || lower to nested ifs over an out register.
        if matches!(op, B::And | B::Or) {
            let out = self.b.new_reg(Ty::I32);
            let (l, lt) = self.expr(lhs)?;
            if !matches!(lt, LTy::Int | LTy::Byte) {
                return Err(self.err("logical op requires int", e));
            }
            let z = self.b.const_i32(0);
            let lbool = self.b.ne(l, z);
            let rhs_bb = self.b.create_block();
            let done = self.b.create_block();
            self.b.move_(out, lbool);
            match op {
                B::And => self.b.branch(lbool, rhs_bb, done),
                _ => self.b.branch(lbool, done, rhs_bb),
            }
            self.b.switch_to(rhs_bb);
            let (r, rt) = self.expr(rhs)?;
            if !matches!(rt, LTy::Int | LTy::Byte) {
                return Err(self.err("logical op requires int", e));
            }
            let z2 = self.b.const_i32(0);
            let rbool = self.b.ne(r, z2);
            self.b.move_(out, rbool);
            self.b.jump(done);
            self.b.switch_to(done);
            return Ok((out, LTy::Int));
        }
        let (l, lt) = self.expr(lhs)?;
        let (r, rt) = self.expr(rhs)?;
        // Reference equality.
        if matches!(op, B::Eq | B::Ne) && (lt.is_ref() || rt.is_ref()) {
            if !(lt.is_ref() && rt.is_ref()) {
                return Err(self.err("comparing reference with non-reference", e));
            }
            let cmp = if op == B::Eq { CmpOp::Eq } else { CmpOp::Ne };
            return Ok((self.b.cmp(cmp, l, r), LTy::Int));
        }
        if lt.is_ref() || rt.is_ref() || lt == LTy::Void || rt == LTy::Void {
            return Err(self.err("arithmetic on non-numbers", e));
        }
        let (l, r, common) = self.promote(l, &lt, r, &rt, e)?;
        let cmp_op = match op {
            B::Eq => Some(CmpOp::Eq),
            B::Ne => Some(CmpOp::Ne),
            B::Lt => Some(CmpOp::Lt),
            B::Le => Some(CmpOp::Le),
            B::Gt => Some(CmpOp::Gt),
            B::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(c) = cmp_op {
            return Ok((self.b.cmp(c, l, r), LTy::Int));
        }
        let ir_op = match op {
            B::Add => spf_ir::BinOp::Add,
            B::Sub => spf_ir::BinOp::Sub,
            B::Mul => spf_ir::BinOp::Mul,
            B::Div => spf_ir::BinOp::Div,
            B::Rem => spf_ir::BinOp::Rem,
            B::Shl => spf_ir::BinOp::Shl,
            B::Shr => spf_ir::BinOp::Shr,
            B::BitAnd => spf_ir::BinOp::And,
            B::BitOr => spf_ir::BinOp::Or,
            B::BitXor => spf_ir::BinOp::Xor,
            _ => unreachable!("handled above"),
        };
        if ir_op.int_only() && common == LTy::Double {
            return Err(self.err("integer operation on double", e));
        }
        Ok((self.b.bin(ir_op, l, r), common))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_heap::Value;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    fn run(src: &str, func: &str, args: &[Value]) -> Option<Value> {
        let program = compile(src).unwrap_or_else(|e| panic!("compile error: {e}\n{src}"));
        let mid = program.method_by_name(func).expect("function exists");
        let mut vm = Vm::new(program, VmConfig::default(), ProcessorConfig::pentium4());
        vm.call(mid, args).expect("runs")
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let out = run(
            "int f(int n) {
                 int acc = 0;
                 for (int i = 0; i < n; i = i + 1) {
                     if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
                 }
                 return acc;
             }",
            "f",
            &[Value::I32(10)],
        );
        // evens 0+2+4+6+8 = 20, odds subtract 5 -> 15
        assert_eq!(out, Some(Value::I32(15)));
    }

    #[test]
    fn classes_arrays_and_fields() {
        let out = run(
            "class Node { int v; Node next; }
             int f(int n) {
                 Node head = null;
                 for (int i = 0; i < n; i = i + 1) {
                     Node x = new Node();
                     x.v = i;
                     x.next = head;
                     head = x;
                 }
                 int sum = 0;
                 while (head != null) {
                     sum = sum + head.v;
                     head = head.next;
                 }
                 return sum;
             }",
            "f",
            &[Value::I32(5)],
        );
        assert_eq!(out, Some(Value::I32(10)));
    }

    #[test]
    fn arrays_length_and_bytes() {
        let out = run(
            "int f() {
                 byte[] b = new byte[10];
                 for (int i = 0; i < b.length; i = i + 1) { b[i] = i * 3; }
                 int acc = 0;
                 for (int i = 0; i < b.length; i = i + 1) { acc = acc + b[i]; }
                 return acc;
             }",
            "f",
            &[],
        );
        assert_eq!(out, Some(Value::I32(135)));
    }

    #[test]
    fn calls_and_recursion() {
        let out = run(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int f() { return fib(10); }",
            "f",
            &[],
        );
        assert_eq!(out, Some(Value::I32(55)));
    }

    #[test]
    fn doubles_and_casts() {
        let out = run(
            "int f(int n) {
                 double acc = 0.0;
                 for (int i = 0; i < n; i = i + 1) { acc = acc + 1.5; }
                 return (int) acc;
             }",
            "f",
            &[Value::I32(4)],
        );
        assert_eq!(out, Some(Value::I32(6)));
    }

    #[test]
    fn short_circuit_semantics() {
        // The right side would trap (div by zero) if evaluated.
        let out = run(
            "int f(int x) { if (x != 0 && 10 / x > 1) return 1; return 0; }",
            "f",
            &[Value::I32(0)],
        );
        assert_eq!(out, Some(Value::I32(0)));
    }

    #[test]
    fn break_continue_in_for() {
        let out = run(
            "int f() {
                 int acc = 0;
                 for (int i = 0; i < 100; i = i + 1) {
                     if (i == 5) continue;
                     if (i == 8) break;
                     acc = acc + i;
                 }
                 return acc;
             }",
            "f",
            &[],
        );
        // 0+1+2+3+4+6+7 = 23
        assert_eq!(out, Some(Value::I32(23)));
    }

    #[test]
    fn statics() {
        let out = run(
            "static int counter;
             void bump() { counter = counter + 1; }
             int f() { bump(); bump(); bump(); return counter; }",
            "f",
            &[],
        );
        assert_eq!(out, Some(Value::I32(3)));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(compile("int f() { return null; }").is_err());
        assert!(compile("int f(double d) { return d; }").is_err());
        assert!(compile("void f() { g(); }").is_err());
        assert!(compile("int f() { int x = new int[3]; return x; }").is_err());
        assert!(compile("class A { int v; } int f(A a) { return a.w; }").is_err());
    }

    #[test]
    fn nested_arrays() {
        let out = run(
            "int f(int n) {
                 int[][] g = new int[][n];
                 for (int i = 0; i < n; i = i + 1) {
                     g[i] = new int[n];
                     for (int j = 0; j < n; j = j + 1) { g[i][j] = i * j; }
                 }
                 int acc = 0;
                 for (int i = 0; i < n; i = i + 1) {
                     acc = acc + g[i][i];
                 }
                 return acc;
             }",
            "f",
            &[Value::I32(5)],
        );
        // sum of i^2 for i in 0..5 = 30
        assert_eq!(out, Some(Value::I32(30)));
    }

    #[test]
    fn mutual_recursion() {
        let out = run(
            "int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
             int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
             int f() { return isEven(10) * 10 + isOdd(7); }",
            "f",
            &[],
        );
        assert_eq!(out, Some(Value::I32(11)));
    }

    #[test]
    fn class_typed_arrays_of_arrays() {
        let out = run(
            "class P { int v; }
             int f() {
                 P[][] rows = new P[][3];
                 for (int i = 0; i < 3; i = i + 1) {
                     rows[i] = new P[3];
                     for (int j = 0; j < 3; j = j + 1) {
                         P p = new P();
                         p.v = i + j;
                         rows[i][j] = p;
                     }
                 }
                 return rows[2][2].v;
             }",
            "f",
            &[],
        );
        assert_eq!(out, Some(Value::I32(4)));
    }

    #[test]
    fn long_arithmetic() {
        let out = run(
            "long f(int n) { long acc = 0; for (int i = 0; i < n; i = i + 1) { acc = acc + 1000000000; } return acc; }",
            "f",
            &[Value::I32(5)],
        );
        assert_eq!(out, Some(Value::I64(5_000_000_000)));
    }
}
