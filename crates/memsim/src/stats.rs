//! Miss-event counters (the raw material of the paper's Figures 8–10).

/// Counters kept by [`crate::MemorySystem`].
///
/// The paper's metric is *misses per instruction* (MPI): "the number of
/// dynamic miss events divided by the number of retired instructions"
/// (§4.2). Retired-instruction counts live in the execution engine; these
/// counters supply the numerators. Miss events of prefetch instructions and
/// guarded loads are counted separately from demand loads, mirroring how
/// the paper's VTune measurements attribute load misses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Demand loads executed.
    pub loads: u64,
    /// Demand stores executed.
    pub stores: u64,
    /// Demand-load L1 miss events.
    pub l1_load_misses: u64,
    /// Demand-store L1 miss events.
    pub l1_store_misses: u64,
    /// Demand-load L2 miss events.
    pub l2_load_misses: u64,
    /// Demand-store L2 miss events.
    pub l2_store_misses: u64,
    /// Demand-load DTLB miss events.
    pub dtlb_load_misses: u64,
    /// Demand-store DTLB miss events.
    pub dtlb_store_misses: u64,
    /// Software prefetch instructions issued.
    pub swpf_issued: u64,
    /// Software prefetches cancelled because of a DTLB miss (Pentium 4).
    pub swpf_dropped_tlb: u64,
    /// Software prefetches that initiated a fill (missed the target level).
    pub swpf_fills: u64,
    /// Guarded prefetch loads executed.
    pub guarded_loads: u64,
    /// Guarded prefetch loads that initiated a fill.
    pub guarded_load_fills: u64,
    /// Guarded prefetch loads that primed a missing DTLB entry.
    pub guarded_load_tlb_fills: u64,
    /// Lines fetched by the hardware next-line prefetcher.
    pub hw_prefetch_fills: u64,
    /// Total stall cycles attributed to memory (demand accesses only).
    pub stall_cycles: u64,
}

impl MemStats {
    /// L1 load misses per `retired` instructions.
    pub fn l1_load_mpi(&self, retired: u64) -> f64 {
        ratio(self.l1_load_misses, retired)
    }

    /// L2 load misses per `retired` instructions.
    pub fn l2_load_mpi(&self, retired: u64) -> f64 {
        ratio(self.l2_load_misses, retired)
    }

    /// DTLB load misses per `retired` instructions.
    pub fn dtlb_load_mpi(&self, retired: u64) -> f64 {
        ratio(self.dtlb_load_misses, retired)
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_computation() {
        let s = MemStats {
            l1_load_misses: 5,
            ..MemStats::default()
        };
        assert!((s.l1_load_mpi(1000) - 0.005).abs() < 1e-12);
        assert_eq!(s.l1_load_mpi(0), 0.0);
    }
}
