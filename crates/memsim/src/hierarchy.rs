//! The two-level memory hierarchy with DTLB and prefetch semantics.

use std::collections::HashMap;

use spf_trace::{MissLevel, NoopSink, SiteId, TraceEvent, TraceSink};

use crate::cache::{Cache, Lookup};
use crate::config::{CacheLevel, ProcessorConfig};
use crate::stats::MemStats;
use crate::tlb::Tlb;

/// Issue cost, in cycles, of a software prefetch instruction.
pub const SWPF_ISSUE_COST: u64 = 1;

/// Issue cost, in cycles, of a guarded prefetch load (address check plus
/// the load µops; the fill itself is overlapped, as on an out-of-order
/// machine).
pub const GUARDED_LOAD_COST: u64 = 2;

/// A simulated L1/L2/DTLB memory system for one processor.
///
/// Demand accesses ([`load`](Self::load), [`store`](Self::store)) return the
/// access latency in cycles, which the execution engine adds to its cycle
/// counter — an in-order, stall-on-use timing model. Prefetches are
/// non-blocking: they initiate fills whose completion times are tracked per
/// line, so a demand access arriving before the fill completes waits only
/// for the remainder.
///
/// The sink type parameter selects tracing. With the default [`NoopSink`]
/// every `if S::ENABLED` guard below is compile-time false, so the traced
/// instrumentation — event construction, pending-fill bookkeeping, the
/// site register — vanishes at monomorphization and the simulator is
/// bit-identical to the untraced build. With an enabled sink (e.g.
/// `RingSink`), every miss, prefetch issue/drop/fill, first use or
/// eviction of a prefetched line, and hardware-prefetch fill is emitted,
/// attributed to the prefetch site last set via [`Self::set_site`].
#[derive(Clone, Debug)]
pub struct MemorySystem<S: TraceSink = NoopSink> {
    cfg: ProcessorConfig,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    stats: MemStats,
    sink: S,
    /// Site of the prefetch instruction currently executing (attribution
    /// register; [`SiteId::UNKNOWN`] outside prefetch dispatch).
    cur_site: SiteId,
    /// Prefetch fills resident in L1 and not yet demanded, by line-aligned
    /// address. Only populated when `S::ENABLED`.
    pending_l1: HashMap<u64, SiteId>,
    /// Prefetch fills resident in L2 and not yet demanded (Pentium 4
    /// software prefetches target the L2). Only populated when
    /// `S::ENABLED`.
    pending_l2: HashMap<u64, SiteId>,
    /// L1-line-aligned address of the last demand access iff it was a TLB
    /// hit plus settled L1 hit and nothing has mutated the TLB or caches
    /// since (`u64::MAX` otherwise). A repeat access to this line is the
    /// exact state transition `touch_mru` applies to the TLB and L1, so
    /// [`Self::demand_access`] short-circuits the lookups. Untraced builds
    /// only — with a sink enabled the memo is never set, keeping the
    /// pending-prefetch bookkeeping on every access.
    fast_line: u64,
    /// `!(l1.line_bytes - 1)`, cached for the demand fast path.
    fast_mask: u64,
}

impl MemorySystem {
    /// Creates an untraced memory system for `cfg`.
    pub fn new(cfg: ProcessorConfig) -> Self {
        MemorySystem::with_sink(cfg, NoopSink)
    }
}

impl<S: TraceSink> MemorySystem<S> {
    /// Creates a memory system for `cfg` emitting into `sink`.
    pub fn with_sink(cfg: ProcessorConfig, sink: S) -> Self {
        MemorySystem {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            tlb: Tlb::new(cfg.dtlb_entries, cfg.page_bytes),
            stats: MemStats::default(),
            sink,
            cur_site: SiteId::UNKNOWN,
            pending_l1: HashMap::new(),
            pending_l2: HashMap::new(),
            fast_line: u64::MAX,
            fast_mask: !(cfg.l1.line_bytes - 1),
            cfg,
        }
    }

    /// The processor configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The trace sink, mutably (the VM emits compile-time and GC events
    /// through the memory system's sink so one stream orders everything).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Sets the prefetch site the next [`Self::software_prefetch`] /
    /// [`Self::guarded_load`] calls are attributed to. A no-op (and
    /// compiled out) when tracing is disabled.
    #[inline]
    pub fn set_site(&mut self, site: SiteId) {
        if S::ENABLED {
            self.cur_site = site;
        }
    }

    /// Clears caches, TLB, counters, pending attributions, and the trace
    /// sink (between benchmark runs — events must not leak from one matrix
    /// cell into the next).
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.tlb.flush();
        self.stats = MemStats::default();
        self.fast_line = u64::MAX;
        if S::ENABLED {
            self.sink.clear();
            self.cur_site = SiteId::UNKNOWN;
            self.pending_l1.clear();
            self.pending_l2.clear();
        }
    }

    /// Line-aligned address at `level`.
    fn line_of(&self, level: CacheLevel, addr: u64) -> u64 {
        let bytes = match level {
            CacheLevel::L1 => self.cfg.l1.line_bytes,
            CacheLevel::L2 => self.cfg.l2.line_bytes,
        };
        addr & !(bytes - 1)
    }

    /// Records the first demand use of a pending prefetched line (if
    /// `addr`'s line is one) at `level`.
    #[cold]
    fn note_use(&mut self, level: CacheLevel, addr: u64, now: u64, wait: u64) {
        let line = self.line_of(level, addr);
        let pending = match level {
            CacheLevel::L1 => &mut self.pending_l1,
            CacheLevel::L2 => &mut self.pending_l2,
        };
        if let Some(site) = pending.remove(&line) {
            self.sink.emit(TraceEvent::PrefetchUsed {
                site,
                line,
                now,
                wait,
            });
        }
    }

    /// Records the eviction of a pending prefetched line, given the victim
    /// address an install at `level` reported.
    #[cold]
    fn note_evict(&mut self, level: CacheLevel, victim: Option<u64>, now: u64) {
        let Some(line) = victim else { return };
        let pending = match level {
            CacheLevel::L1 => &mut self.pending_l1,
            CacheLevel::L2 => &mut self.pending_l2,
        };
        if let Some(site) = pending.remove(&line) {
            self.sink
                .emit(TraceEvent::PrefetchEvicted { site, line, now });
        }
    }

    /// Registers a prefetch fill at `level` as pending first use.
    fn note_fill(&mut self, level: CacheLevel, addr: u64) {
        let line = self.line_of(level, addr);
        let site = self.cur_site;
        match level {
            CacheLevel::L1 => self.pending_l1.insert(line, site),
            CacheLevel::L2 => self.pending_l2.insert(line, site),
        };
    }

    #[cold]
    fn emit_demand_miss(&mut self, level: MissLevel, addr: u64, now: u64, store: bool) {
        let line = match level {
            MissLevel::L1 => self.line_of(CacheLevel::L1, addr),
            MissLevel::L2 => self.line_of(CacheLevel::L2, addr),
            MissLevel::Dtlb => addr & !(self.cfg.page_bytes - 1),
        };
        self.sink.emit(TraceEvent::DemandMiss {
            level,
            line,
            now,
            store,
        });
    }

    /// The demand-access fast path: a DTLB hit followed by a settled L1
    /// hit — the overwhelmingly common case — takes exactly one
    /// branch-predictable path with one stall-counter add. Everything else
    /// (TLB walks, L1/L2 misses, in-flight fills) falls through to the
    /// outlined [`Self::demand_slow`].
    #[inline]
    fn demand_access(&mut self, addr: u64, now: u64, is_load: bool) -> u64 {
        // Same L1 line as the last settled hit, with no intervening
        // mutation: the TLB and L1 MRU entries still cover this access, so
        // replay their touch without the lookups. (`fast_line` is aligned
        // and `u64::MAX` is not, so an unset memo never matches.)
        if !S::ENABLED && addr & self.fast_mask == self.fast_line {
            self.tlb.touch_mru();
            self.l1.touch_mru();
            let latency = self.cfg.l1.hit_latency;
            self.stats.stall_cycles += latency;
            return latency;
        }
        let tlb_hit = self.tlb.lookup(addr);
        if !tlb_hit {
            self.tlb.insert(addr);
            if is_load {
                self.stats.dtlb_load_misses += 1;
            } else {
                self.stats.dtlb_store_misses += 1;
            }
            if S::ENABLED {
                self.emit_demand_miss(MissLevel::Dtlb, addr, now, !is_load);
            }
        }
        let l1 = self.l1.lookup(addr, now);
        if tlb_hit {
            if let Lookup::Hit { wait: 0 } = l1 {
                if S::ENABLED && !self.pending_l1.is_empty() {
                    self.note_use(CacheLevel::L1, addr, now, 0);
                }
                if !S::ENABLED {
                    self.fast_line = addr & self.fast_mask;
                }
                let latency = self.cfg.l1.hit_latency;
                self.stats.stall_cycles += latency;
                return latency;
            }
        }
        self.fast_line = u64::MAX;
        let base = if tlb_hit {
            0
        } else {
            self.cfg.tlb_miss_penalty
        };
        self.demand_slow(addr, now, is_load, base, l1)
    }

    /// The demand-access slow path: everything below a settled L1 hit.
    /// `latency` carries the TLB-walk penalty (0 on a TLB hit) and `l1`
    /// the probe result the fast path already obtained — the probe must
    /// not be repeated, its LRU update has already happened.
    #[cold]
    fn demand_slow(
        &mut self,
        addr: u64,
        now: u64,
        is_load: bool,
        mut latency: u64,
        l1: Lookup,
    ) -> u64 {
        match l1 {
            Lookup::Hit { wait } => {
                if S::ENABLED {
                    self.note_use(CacheLevel::L1, addr, now, wait);
                }
                latency += self.cfg.l1.hit_latency + wait;
            }
            Lookup::Miss => {
                if is_load {
                    self.stats.l1_load_misses += 1;
                } else {
                    self.stats.l1_store_misses += 1;
                }
                if S::ENABLED {
                    self.emit_demand_miss(MissLevel::L1, addr, now, !is_load);
                }
                match self.l2.lookup(addr, now) {
                    Lookup::Hit { wait } => {
                        if S::ENABLED {
                            self.note_use(CacheLevel::L2, addr, now, wait);
                        }
                        let lat = self.cfg.l2.hit_latency + wait;
                        latency += lat;
                        let victim = self.l1.install(addr, now + lat);
                        if S::ENABLED {
                            self.note_evict(CacheLevel::L1, victim, now);
                        }
                    }
                    Lookup::Miss => {
                        if is_load {
                            self.stats.l2_load_misses += 1;
                        } else {
                            self.stats.l2_store_misses += 1;
                        }
                        if S::ENABLED {
                            self.emit_demand_miss(MissLevel::L2, addr, now, !is_load);
                        }
                        let lat = self.cfg.mem_latency;
                        latency += lat;
                        let v2 = self.l2.install(addr, now + lat);
                        let v1 = self.l1.install(addr, now + lat);
                        if S::ENABLED {
                            self.note_evict(CacheLevel::L2, v2, now);
                            self.note_evict(CacheLevel::L1, v1, now);
                        }
                        if self.cfg.hw_prefetch {
                            // Simple next-line hardware prefetcher into L2.
                            let next = addr + self.cfg.l2.line_bytes;
                            if !self.l2.contains(next) && self.tlb.contains(next) {
                                let ready = now + lat + self.cfg.mem_latency;
                                let victim = self.l2.install(next, ready);
                                self.stats.hw_prefetch_fills += 1;
                                if S::ENABLED {
                                    self.sink.emit(TraceEvent::HwPrefetchFill {
                                        line: self.line_of(CacheLevel::L2, next),
                                        now,
                                        ready_at: ready,
                                    });
                                    self.note_evict(CacheLevel::L2, victim, now);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.stats.stall_cycles += latency;
        latency
    }

    /// A demand load of any width within one line; returns its latency.
    #[inline]
    pub fn load(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.loads += 1;
        self.demand_access(addr, now, true)
    }

    /// A demand store (write-allocate, treated like a read for fills).
    #[inline]
    pub fn store(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.stores += 1;
        self.demand_access(addr, now, false)
    }

    /// Latency of filling a line into a higher level: the L2's hit latency
    /// when the line is already L2-resident, the full memory latency
    /// otherwise.
    fn fill_latency(&self, addr: u64) -> u64 {
        if self.l2.contains(addr) {
            self.cfg.l2.hit_latency
        } else {
            self.cfg.mem_latency
        }
    }

    /// A software prefetch instruction for the line containing `addr`.
    ///
    /// Fills [`ProcessorConfig::swpf_target`]. On a DTLB miss the prefetch
    /// is cancelled when [`ProcessorConfig::swpf_drops_on_tlb_miss`] (the
    /// Pentium 4 behaviour) and otherwise performs the page walk (Athlon).
    /// Returns the issue cost in cycles.
    pub fn software_prefetch(&mut self, addr: u64, now: u64) -> u64 {
        self.fast_line = u64::MAX;
        self.stats.swpf_issued += 1;
        let site = self.cur_site;
        let line = self.line_of(self.cfg.swpf_target, addr);
        if S::ENABLED {
            self.sink.emit(TraceEvent::SwpfIssued { site, line, now });
        }
        if !self.tlb.contains(addr) {
            if self.cfg.swpf_drops_on_tlb_miss {
                self.stats.swpf_dropped_tlb += 1;
                if S::ENABLED {
                    self.sink.emit(TraceEvent::SwpfDropped { site, line, now });
                }
                return SWPF_ISSUE_COST;
            }
            self.tlb.insert(addr);
        }
        match self.cfg.swpf_target {
            CacheLevel::L1 => {
                if !self.l1.contains(addr) {
                    self.stats.swpf_fills += 1;
                    let ready = now + self.fill_latency(addr);
                    if !self.l2.contains(addr) {
                        let victim = self.l2.install(addr, ready);
                        if S::ENABLED {
                            self.note_evict(CacheLevel::L2, victim, now);
                        }
                    }
                    let victim = self.l1.install(addr, ready);
                    if S::ENABLED {
                        self.note_evict(CacheLevel::L1, victim, now);
                        self.note_fill(CacheLevel::L1, addr);
                        self.sink.emit(TraceEvent::SwpfFill {
                            site,
                            line,
                            now,
                            ready_at: ready,
                        });
                    }
                } else if S::ENABLED {
                    self.sink
                        .emit(TraceEvent::SwpfRedundant { site, line, now });
                }
            }
            CacheLevel::L2 => {
                if !self.l2.contains(addr) {
                    self.stats.swpf_fills += 1;
                    let ready = now + self.cfg.mem_latency;
                    let victim = self.l2.install(addr, ready);
                    if S::ENABLED {
                        self.note_evict(CacheLevel::L2, victim, now);
                        self.note_fill(CacheLevel::L2, addr);
                        self.sink.emit(TraceEvent::SwpfFill {
                            site,
                            line,
                            now,
                            ready_at: ready,
                        });
                    }
                } else if S::ENABLED {
                    self.sink
                        .emit(TraceEvent::SwpfRedundant { site, line, now });
                }
            }
        }
        SWPF_ISSUE_COST
    }

    /// A guarded prefetch load: a real (but speculative) load that fills
    /// the L1 and L2 and *primes the DTLB* on a miss — the paper's "TLB
    /// priming" mapping for intra-iteration prefetches on the Pentium 4
    /// (§3.3). Returns the issue cost; the fill is overlapped.
    pub fn guarded_load(&mut self, addr: u64, now: u64) -> u64 {
        self.fast_line = u64::MAX;
        self.stats.guarded_loads += 1;
        let site = self.cur_site;
        let line = self.line_of(CacheLevel::L1, addr);
        let mut tlb_primed = false;
        if !self.tlb.lookup(addr) {
            self.tlb.insert(addr);
            self.stats.guarded_load_tlb_fills += 1;
            tlb_primed = true;
        }
        if S::ENABLED {
            self.sink.emit(TraceEvent::GuardedIssued {
                site,
                line,
                now,
                tlb_primed,
            });
        }
        if !self.l1.contains(addr) {
            self.stats.guarded_load_fills += 1;
            let ready = now + self.fill_latency(addr);
            if !self.l2.contains(addr) {
                let victim = self.l2.install(addr, ready);
                if S::ENABLED {
                    self.note_evict(CacheLevel::L2, victim, now);
                }
            }
            let victim = self.l1.install(addr, ready);
            if S::ENABLED {
                self.note_evict(CacheLevel::L1, victim, now);
                self.note_fill(CacheLevel::L1, addr);
                self.sink.emit(TraceEvent::GuardedFill {
                    site,
                    line,
                    now,
                    ready_at: ready,
                });
            }
        }
        GUARDED_LOAD_COST
    }

    /// Whether the line containing `addr` is resident at `level`.
    pub fn line_present(&self, level: CacheLevel, addr: u64) -> bool {
        match level {
            CacheLevel::L1 => self.l1.contains(addr),
            CacheLevel::L2 => self.l2.contains(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_trace::{attribute, RingSink};

    fn p4() -> MemorySystem {
        MemorySystem::new(ProcessorConfig::pentium4())
    }

    fn athlon() -> MemorySystem {
        MemorySystem::new(ProcessorConfig::athlon_mp())
    }

    #[test]
    fn cold_load_misses_everywhere() {
        let mut m = p4();
        let lat = m.load(0x10_0000, 0);
        assert_eq!(m.stats().l1_load_misses, 1);
        assert_eq!(m.stats().l2_load_misses, 1);
        assert_eq!(m.stats().dtlb_load_misses, 1);
        assert!(lat >= m.config().mem_latency);
    }

    #[test]
    fn second_load_hits_l1() {
        let mut m = p4();
        let first = m.load(0x10_0000, 0);
        let second = m.load(0x10_0008, first);
        assert_eq!(second, m.config().l1.hit_latency);
        assert_eq!(m.stats().l1_load_misses, 1);
    }

    #[test]
    fn p4_swpf_fills_l2_not_l1() {
        let mut m = p4();
        m.load(0x10_0000, 0); // prime TLB for the page
        m.software_prefetch(0x10_0400, 10);
        assert!(m.line_present(CacheLevel::L2, 0x10_0400));
        assert!(!m.line_present(CacheLevel::L1, 0x10_0400));
        assert_eq!(m.stats().swpf_fills, 1);
    }

    #[test]
    fn athlon_swpf_fills_l1() {
        let mut m = athlon();
        m.load(0x10_0000, 0);
        m.software_prefetch(0x10_0400, 10);
        assert!(m.line_present(CacheLevel::L1, 0x10_0400));
        assert!(m.line_present(CacheLevel::L2, 0x10_0400));
    }

    #[test]
    fn p4_swpf_dropped_on_tlb_miss() {
        let mut m = p4();
        m.software_prefetch(0x40_0000, 0); // page never touched
        assert_eq!(m.stats().swpf_dropped_tlb, 1);
        assert!(!m.line_present(CacheLevel::L2, 0x40_0000));
    }

    #[test]
    fn athlon_swpf_walks_on_tlb_miss() {
        let mut m = athlon();
        m.software_prefetch(0x40_0000, 0);
        assert_eq!(m.stats().swpf_dropped_tlb, 0);
        assert!(m.line_present(CacheLevel::L1, 0x40_0000));
        // And the page is now resident, so a demand load takes no TLB miss.
        let before = m.stats().dtlb_load_misses;
        m.load(0x40_0000, 1_000);
        assert_eq!(m.stats().dtlb_load_misses, before);
    }

    #[test]
    fn guarded_load_primes_tlb_and_l1() {
        let mut m = p4();
        let cost = m.guarded_load(0x40_0000, 0);
        assert_eq!(cost, GUARDED_LOAD_COST);
        assert_eq!(m.stats().guarded_load_tlb_fills, 1);
        assert!(m.line_present(CacheLevel::L1, 0x40_0000));
        // Demand load long after: TLB hit, L1 hit, no new miss events.
        let lat = m.load(0x40_0000, 10_000);
        assert_eq!(lat, m.config().l1.hit_latency);
        assert_eq!(m.stats().dtlb_load_misses, 0);
        assert_eq!(m.stats().l1_load_misses, 0);
    }

    #[test]
    fn too_late_prefetch_waits_partially() {
        let mut m = p4();
        m.load(0x10_0000, 0); // prime page
        let l2_misses_before = m.stats().l2_load_misses;
        m.software_prefetch(0x10_0800, 100);
        // Demand load 50 cycles later: line is in flight, waits ~150.
        let lat = m.load(0x10_0800, 150);
        let expected_wait = (100 + m.config().mem_latency) - 150;
        // L1 misses (P4 prefetch fills L2 only), L2 "hits" with a wait.
        assert_eq!(lat, m.config().l2.hit_latency + expected_wait);
        assert_eq!(
            m.stats().l2_load_misses,
            l2_misses_before,
            "no new L2 miss event"
        );
    }

    #[test]
    fn timely_prefetch_eliminates_stall() {
        let mut m = p4();
        m.load(0x10_0000, 0);
        m.software_prefetch(0x10_0800, 100);
        let lat = m.load(0x10_0800, 100 + m.config().mem_latency + 10);
        assert_eq!(lat, m.config().l2.hit_latency);
    }

    #[test]
    fn hw_prefetcher_fetches_next_line() {
        let mut m = p4();
        m.load(0x10_0000, 0);
        assert!(m.stats().hw_prefetch_fills >= 1);
        assert!(m.line_present(CacheLevel::L2, 0x10_0000 + 128));
    }

    #[test]
    fn reset_clears_state() {
        let mut m = p4();
        m.load(0x10_0000, 0);
        m.reset();
        assert_eq!(m.stats().loads, 0);
        assert!(!m.line_present(CacheLevel::L2, 0x10_0000));
    }

    // ---- tracing ------------------------------------------------------

    fn traced_p4() -> MemorySystem<RingSink> {
        MemorySystem::with_sink(ProcessorConfig::pentium4(), RingSink::default())
    }

    /// Replays the same access sequence against a traced and an untraced
    /// system and asserts identical latencies and stats.
    #[test]
    fn tracing_never_changes_simulated_numbers() {
        let mut plain = p4();
        let mut traced = traced_p4();
        let mut now = [0u64; 2];
        for i in 0..2_000u64 {
            let addr = 0x10_0000 + (i % 97) * 1_037;
            for (k, lat) in [plain.load(addr, now[0]), traced.load(addr, now[1])]
                .into_iter()
                .enumerate()
            {
                now[k] += lat;
            }
            if i % 7 == 0 {
                now[0] += plain.software_prefetch(addr + 4096, now[0]);
                now[1] += traced.software_prefetch(addr + 4096, now[1]);
            }
            if i % 13 == 0 {
                now[0] += plain.guarded_load(addr + 8192, now[0]);
                now[1] += traced.guarded_load(addr + 8192, now[1]);
            }
        }
        assert_eq!(now[0], now[1], "latency streams diverged");
        assert_eq!(plain.stats(), traced.stats(), "counters diverged");
        assert!(traced.sink().total() > 0, "traced run emitted events");
    }

    /// The traced counters reconcile with `MemStats`: every issued
    /// software prefetch is classified exactly once.
    #[test]
    fn attribution_reconciles_with_stats() {
        let mut m = traced_p4();
        let mut now = 0u64;
        m.set_site(SiteId(1));
        for i in 0..600u64 {
            let addr = 0x20_0000 + (i % 53) * 911;
            now += m.load(addr, now);
            now += m.software_prefetch(addr + 2048, now);
            if i % 5 == 0 {
                now += m.guarded_load(addr + 16384, now);
            }
        }
        let events = m.sink().events();
        assert_eq!(m.sink().overwritten(), 0, "ring must not truncate here");
        let attr = attribute(&events);
        let stats = m.stats();
        assert_eq!(
            attr.total(|e| e.swpf_issued),
            stats.swpf_issued,
            "issue events match the counter"
        );
        assert_eq!(attr.total(|e| e.swpf_dropped), stats.swpf_dropped_tlb);
        assert_eq!(attr.total(|e| e.swpf_fills), stats.swpf_fills);
        assert_eq!(attr.total(|e| e.guarded_issued), stats.guarded_loads);
        assert_eq!(attr.total(|e| e.guarded_fills), stats.guarded_load_fills);
        assert_eq!(
            attr.total(|e| e.guarded_tlb_primed),
            stats.guarded_load_tlb_fills
        );
        assert_eq!(attr.hw_prefetch_fills, stats.hw_prefetch_fills);
        assert_eq!(attr.l1_misses, stats.l1_load_misses + stats.l1_store_misses);
        // Exhaustive classification: the four buckets partition issues.
        let classified = attr.total(|e| e.useful())
            + attr.total(|e| e.too_early())
            + attr.total(|e| e.too_late())
            + attr.total(|e| e.dropped());
        assert_eq!(
            classified,
            stats.swpf_issued + stats.guarded_loads,
            "every issued prefetch classified exactly once"
        );
    }

    #[test]
    fn events_attribute_to_the_set_site() {
        let mut m = traced_p4();
        m.load(0x10_0000, 0); // prime page
        m.set_site(SiteId(7));
        m.software_prefetch(0x10_0400, 10);
        m.load(0x10_0400, 10_000); // settled use
        let attr = attribute(&m.sink().events());
        let e = attr.site(SiteId(7));
        assert_eq!(e.swpf_issued, 1);
        assert_eq!(e.useful(), 1);
    }

    #[test]
    fn eviction_classifies_too_early() {
        // Athlon: its prefetch instruction page-walks instead of dropping,
        // and fills the (small) L1, so prefetches to a region that is
        // never demand-accessed conflict each other out before any use.
        let mut m = MemorySystem::with_sink(ProcessorConfig::athlon_mp(), RingSink::default());
        m.set_site(SiteId(3));
        let mut now = 0;
        for i in 0..4_000u64 {
            let addr = 0x100_0000 + i * 64;
            now += m.load(addr, now);
            now += m.software_prefetch(0x500_0000 + i * 64, now);
        }
        let attr = attribute(&m.sink().events());
        let e = attr.site(SiteId(3));
        assert!(e.evicted > 0, "expected evictions, got {e:?}");
        assert!(e.too_early() > 0);
        assert_eq!(e.used_settled + e.used_waited, 0, "never demanded");
    }

    #[test]
    fn reset_clears_sink_and_pending() {
        let mut m = traced_p4();
        m.load(0x10_0000, 0);
        m.set_site(SiteId(2));
        m.software_prefetch(0x10_0400, 10);
        assert!(m.sink().total() > 0);
        m.reset();
        assert_eq!(m.sink().total(), 0, "reset clears the sink");
        m.load(0x10_0400, 0);
        let attr = attribute(&m.sink().events());
        assert!(
            attr.per_site.is_empty(),
            "no stale pending attribution survives reset: {attr:?}"
        );
    }
}
