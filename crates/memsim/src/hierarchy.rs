//! The two-level memory hierarchy with DTLB and prefetch semantics.

use crate::cache::{Cache, Lookup};
use crate::config::{CacheLevel, ProcessorConfig};
use crate::stats::MemStats;
use crate::tlb::Tlb;

/// Issue cost, in cycles, of a software prefetch instruction.
pub const SWPF_ISSUE_COST: u64 = 1;

/// Issue cost, in cycles, of a guarded prefetch load (address check plus
/// the load µops; the fill itself is overlapped, as on an out-of-order
/// machine).
pub const GUARDED_LOAD_COST: u64 = 2;

/// A simulated L1/L2/DTLB memory system for one processor.
///
/// Demand accesses ([`load`](Self::load), [`store`](Self::store)) return the
/// access latency in cycles, which the execution engine adds to its cycle
/// counter — an in-order, stall-on-use timing model. Prefetches are
/// non-blocking: they initiate fills whose completion times are tracked per
/// line, so a demand access arriving before the fill completes waits only
/// for the remainder.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: ProcessorConfig,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates a memory system for `cfg`.
    pub fn new(cfg: ProcessorConfig) -> Self {
        MemorySystem {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            tlb: Tlb::new(cfg.dtlb_entries, cfg.page_bytes),
            stats: MemStats::default(),
            cfg,
        }
    }

    /// The processor configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Clears caches, TLB, and counters (between benchmark runs).
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.tlb.flush();
        self.stats = MemStats::default();
    }

    /// The demand-access fast path: a DTLB hit followed by a settled L1
    /// hit — the overwhelmingly common case — takes exactly one
    /// branch-predictable path with one stall-counter add. Everything else
    /// (TLB walks, L1/L2 misses, in-flight fills) falls through to the
    /// outlined [`Self::demand_slow`].
    #[inline]
    fn demand_access(&mut self, addr: u64, now: u64, is_load: bool) -> u64 {
        let tlb_hit = self.tlb.lookup(addr);
        if !tlb_hit {
            self.tlb.insert(addr);
            if is_load {
                self.stats.dtlb_load_misses += 1;
            } else {
                self.stats.dtlb_store_misses += 1;
            }
        }
        let l1 = self.l1.lookup(addr, now);
        if tlb_hit {
            if let Lookup::Hit { wait: 0 } = l1 {
                let latency = self.cfg.l1.hit_latency;
                self.stats.stall_cycles += latency;
                return latency;
            }
        }
        let base = if tlb_hit {
            0
        } else {
            self.cfg.tlb_miss_penalty
        };
        self.demand_slow(addr, now, is_load, base, l1)
    }

    /// The demand-access slow path: everything below a settled L1 hit.
    /// `latency` carries the TLB-walk penalty (0 on a TLB hit) and `l1`
    /// the probe result the fast path already obtained — the probe must
    /// not be repeated, its LRU update has already happened.
    #[cold]
    fn demand_slow(
        &mut self,
        addr: u64,
        now: u64,
        is_load: bool,
        mut latency: u64,
        l1: Lookup,
    ) -> u64 {
        match l1 {
            Lookup::Hit { wait } => {
                latency += self.cfg.l1.hit_latency + wait;
            }
            Lookup::Miss => {
                if is_load {
                    self.stats.l1_load_misses += 1;
                } else {
                    self.stats.l1_store_misses += 1;
                }
                match self.l2.lookup(addr, now) {
                    Lookup::Hit { wait } => {
                        let lat = self.cfg.l2.hit_latency + wait;
                        latency += lat;
                        self.l1.install(addr, now + lat);
                    }
                    Lookup::Miss => {
                        if is_load {
                            self.stats.l2_load_misses += 1;
                        } else {
                            self.stats.l2_store_misses += 1;
                        }
                        let lat = self.cfg.mem_latency;
                        latency += lat;
                        self.l2.install(addr, now + lat);
                        self.l1.install(addr, now + lat);
                        if self.cfg.hw_prefetch {
                            // Simple next-line hardware prefetcher into L2.
                            let next = addr + self.cfg.l2.line_bytes;
                            if !self.l2.contains(next) && self.tlb.contains(next) {
                                self.l2.install(next, now + lat + self.cfg.mem_latency);
                                self.stats.hw_prefetch_fills += 1;
                            }
                        }
                    }
                }
            }
        }
        self.stats.stall_cycles += latency;
        latency
    }

    /// A demand load of any width within one line; returns its latency.
    #[inline]
    pub fn load(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.loads += 1;
        self.demand_access(addr, now, true)
    }

    /// A demand store (write-allocate, treated like a read for fills).
    #[inline]
    pub fn store(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.stores += 1;
        self.demand_access(addr, now, false)
    }

    /// Latency of filling a line into a higher level: the L2's hit latency
    /// when the line is already L2-resident, the full memory latency
    /// otherwise.
    fn fill_latency(&self, addr: u64) -> u64 {
        if self.l2.contains(addr) {
            self.cfg.l2.hit_latency
        } else {
            self.cfg.mem_latency
        }
    }

    /// A software prefetch instruction for the line containing `addr`.
    ///
    /// Fills [`ProcessorConfig::swpf_target`]. On a DTLB miss the prefetch
    /// is cancelled when [`ProcessorConfig::swpf_drops_on_tlb_miss`] (the
    /// Pentium 4 behaviour) and otherwise performs the page walk (Athlon).
    /// Returns the issue cost in cycles.
    pub fn software_prefetch(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.swpf_issued += 1;
        if !self.tlb.contains(addr) {
            if self.cfg.swpf_drops_on_tlb_miss {
                self.stats.swpf_dropped_tlb += 1;
                return SWPF_ISSUE_COST;
            }
            self.tlb.insert(addr);
        }
        match self.cfg.swpf_target {
            CacheLevel::L1 => {
                if !self.l1.contains(addr) {
                    self.stats.swpf_fills += 1;
                    let ready = now + self.fill_latency(addr);
                    if !self.l2.contains(addr) {
                        self.l2.install(addr, ready);
                    }
                    self.l1.install(addr, ready);
                }
            }
            CacheLevel::L2 => {
                if !self.l2.contains(addr) {
                    self.stats.swpf_fills += 1;
                    self.l2.install(addr, now + self.cfg.mem_latency);
                }
            }
        }
        SWPF_ISSUE_COST
    }

    /// A guarded prefetch load: a real (but speculative) load that fills
    /// the L1 and L2 and *primes the DTLB* on a miss — the paper's "TLB
    /// priming" mapping for intra-iteration prefetches on the Pentium 4
    /// (§3.3). Returns the issue cost; the fill is overlapped.
    pub fn guarded_load(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.guarded_loads += 1;
        if !self.tlb.lookup(addr) {
            self.tlb.insert(addr);
            self.stats.guarded_load_tlb_fills += 1;
        }
        if !self.l1.contains(addr) {
            self.stats.guarded_load_fills += 1;
            let ready = now + self.fill_latency(addr);
            if !self.l2.contains(addr) {
                self.l2.install(addr, ready);
            }
            self.l1.install(addr, ready);
        }
        GUARDED_LOAD_COST
    }

    /// Whether the line containing `addr` is resident at `level`.
    pub fn line_present(&self, level: CacheLevel, addr: u64) -> bool {
        match level {
            CacheLevel::L1 => self.l1.contains(addr),
            CacheLevel::L2 => self.l2.contains(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4() -> MemorySystem {
        MemorySystem::new(ProcessorConfig::pentium4())
    }

    fn athlon() -> MemorySystem {
        MemorySystem::new(ProcessorConfig::athlon_mp())
    }

    #[test]
    fn cold_load_misses_everywhere() {
        let mut m = p4();
        let lat = m.load(0x10_0000, 0);
        assert_eq!(m.stats().l1_load_misses, 1);
        assert_eq!(m.stats().l2_load_misses, 1);
        assert_eq!(m.stats().dtlb_load_misses, 1);
        assert!(lat >= m.config().mem_latency);
    }

    #[test]
    fn second_load_hits_l1() {
        let mut m = p4();
        let first = m.load(0x10_0000, 0);
        let second = m.load(0x10_0008, first);
        assert_eq!(second, m.config().l1.hit_latency);
        assert_eq!(m.stats().l1_load_misses, 1);
    }

    #[test]
    fn p4_swpf_fills_l2_not_l1() {
        let mut m = p4();
        m.load(0x10_0000, 0); // prime TLB for the page
        m.software_prefetch(0x10_0400, 10);
        assert!(m.line_present(CacheLevel::L2, 0x10_0400));
        assert!(!m.line_present(CacheLevel::L1, 0x10_0400));
        assert_eq!(m.stats().swpf_fills, 1);
    }

    #[test]
    fn athlon_swpf_fills_l1() {
        let mut m = athlon();
        m.load(0x10_0000, 0);
        m.software_prefetch(0x10_0400, 10);
        assert!(m.line_present(CacheLevel::L1, 0x10_0400));
        assert!(m.line_present(CacheLevel::L2, 0x10_0400));
    }

    #[test]
    fn p4_swpf_dropped_on_tlb_miss() {
        let mut m = p4();
        m.software_prefetch(0x40_0000, 0); // page never touched
        assert_eq!(m.stats().swpf_dropped_tlb, 1);
        assert!(!m.line_present(CacheLevel::L2, 0x40_0000));
    }

    #[test]
    fn athlon_swpf_walks_on_tlb_miss() {
        let mut m = athlon();
        m.software_prefetch(0x40_0000, 0);
        assert_eq!(m.stats().swpf_dropped_tlb, 0);
        assert!(m.line_present(CacheLevel::L1, 0x40_0000));
        // And the page is now resident, so a demand load takes no TLB miss.
        let before = m.stats().dtlb_load_misses;
        m.load(0x40_0000, 1_000);
        assert_eq!(m.stats().dtlb_load_misses, before);
    }

    #[test]
    fn guarded_load_primes_tlb_and_l1() {
        let mut m = p4();
        let cost = m.guarded_load(0x40_0000, 0);
        assert_eq!(cost, GUARDED_LOAD_COST);
        assert_eq!(m.stats().guarded_load_tlb_fills, 1);
        assert!(m.line_present(CacheLevel::L1, 0x40_0000));
        // Demand load long after: TLB hit, L1 hit, no new miss events.
        let lat = m.load(0x40_0000, 10_000);
        assert_eq!(lat, m.config().l1.hit_latency);
        assert_eq!(m.stats().dtlb_load_misses, 0);
        assert_eq!(m.stats().l1_load_misses, 0);
    }

    #[test]
    fn too_late_prefetch_waits_partially() {
        let mut m = p4();
        m.load(0x10_0000, 0); // prime page
        let l2_misses_before = m.stats().l2_load_misses;
        m.software_prefetch(0x10_0800, 100);
        // Demand load 50 cycles later: line is in flight, waits ~150.
        let lat = m.load(0x10_0800, 150);
        let expected_wait = (100 + m.config().mem_latency) - 150;
        // L1 misses (P4 prefetch fills L2 only), L2 "hits" with a wait.
        assert_eq!(lat, m.config().l2.hit_latency + expected_wait);
        assert_eq!(
            m.stats().l2_load_misses,
            l2_misses_before,
            "no new L2 miss event"
        );
    }

    #[test]
    fn timely_prefetch_eliminates_stall() {
        let mut m = p4();
        m.load(0x10_0000, 0);
        m.software_prefetch(0x10_0800, 100);
        let lat = m.load(0x10_0800, 100 + m.config().mem_latency + 10);
        assert_eq!(lat, m.config().l2.hit_latency);
    }

    #[test]
    fn hw_prefetcher_fetches_next_line() {
        let mut m = p4();
        m.load(0x10_0000, 0);
        assert!(m.stats().hw_prefetch_fills >= 1);
        assert!(m.line_present(CacheLevel::L2, 0x10_0000 + 128));
    }

    #[test]
    fn reset_clears_state() {
        let mut m = p4();
        m.load(0x10_0000, 0);
        m.reset();
        assert_eq!(m.stats().loads, 0);
        assert!(!m.line_present(CacheLevel::L2, 0x10_0000));
    }
}
