//! A set-associative cache with LRU replacement and per-line fill
//! timestamps.
//!
//! Hot-path layout: all lines live in one contiguous `Vec<Line>`; set `s`
//! occupies `lines[s * assoc .. (s + 1) * assoc]`. The per-set `Vec<Vec<_>>`
//! of the original implementation cost a pointer chase per access and
//! scattered the sets across the allocator; the flat array makes a lookup
//! a single bounded slice scan over adjacent memory.

use crate::config::CacheParams;

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    /// Cycle at which the line's fill completes. A demand access before
    /// this time waits for the remainder — this is how prefetch timeliness
    /// ("not too late") is modelled.
    ready_at: u64,
    /// LRU timestamp.
    last_used: u64,
}

/// Result of a cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// Line present; `wait` extra cycles until an in-flight fill completes
    /// (0 for a settled line).
    Hit {
        /// Extra cycles to wait for an in-flight fill.
        wait: u64,
    },
    /// Line absent.
    Miss,
}

/// A set-associative, LRU, write-allocate cache.
#[derive(Clone, Debug)]
pub struct Cache {
    params: CacheParams,
    /// All lines, contiguous; set `s` is `lines[s * assoc..][..assoc]`.
    lines: Vec<Line>,
    assoc: usize,
    set_mask: u64,
    set_shift: u32,
    line_shift: u32,
    tick: u64,
    /// Index (into `lines`) of the most recently hit line. Pure lookup
    /// accelerator: a hit through `mru` performs the same tick/`last_used`
    /// update the way scan would, so hit/miss/eviction decisions are
    /// unchanged — consecutive accesses to the same line skip the scan.
    mru: usize,
}

impl Cache {
    /// Creates a cache with the given geometry.
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        let assoc = params.assoc as usize;
        Cache {
            params,
            lines: vec![Line::default(); sets as usize * assoc],
            assoc,
            set_mask: sets - 1,
            set_shift: (sets - 1).count_ones(),
            line_shift: params.line_bytes.trailing_zeros(),
            tick: 0,
            mru: 0,
        }
    }

    /// The cache's geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    #[inline(always)]
    fn set_base_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize * self.assoc,
            line >> self.set_shift,
        )
    }

    /// Looks up `addr`, updating LRU state on a hit.
    #[inline]
    pub fn lookup(&mut self, addr: u64, now: u64) -> Lookup {
        self.tick += 1;
        let (base, tag) = self.set_base_and_tag(addr);
        let tick = self.tick;
        // Fast path: consecutive accesses overwhelmingly touch the line
        // hit last time.
        if self.mru.wrapping_sub(base) < self.assoc {
            let line = &mut self.lines[self.mru];
            if line.valid && line.tag == tag {
                line.last_used = tick;
                return Lookup::Hit {
                    wait: line.ready_at.saturating_sub(now),
                };
            }
        }
        for (i, line) in self.lines[base..base + self.assoc].iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.last_used = tick;
                self.mru = base + i;
                return Lookup::Hit {
                    wait: line.ready_at.saturating_sub(now),
                };
            }
        }
        Lookup::Miss
    }

    /// Re-touches the line hit by the immediately preceding lookup:
    /// exactly the `lookup` MRU fast path (tick advance + `last_used`
    /// refresh) for a caller that has already proven the same line is
    /// accessed again. Caller contract: no install/flush since that
    /// lookup, so validity, tag, and `ready_at` are unchanged.
    #[inline(always)]
    pub(crate) fn touch_mru(&mut self) {
        self.tick += 1;
        self.lines[self.mru].last_used = self.tick;
    }

    /// Whether the line containing `addr` is present (no LRU update).
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let (base, tag) = self.set_base_and_tag(addr);
        self.lines[base..base + self.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU way if needed.
    /// `ready_at` is the cycle its fill completes. Re-installing an already
    /// present line only tightens its `ready_at` (a demand fill of an
    /// in-flight prefetch). Returns the line-aligned address of the valid
    /// line evicted to make room, if any (used for prefetch-eviction
    /// attribution).
    pub fn install(&mut self, addr: u64, ready_at: u64) -> Option<u64> {
        self.tick += 1;
        let (base, tag) = self.set_base_and_tag(addr);
        let tick = self.tick;
        let set = &mut self.lines[base..base + self.assoc];
        if let Some((i, line)) = set
            .iter_mut()
            .enumerate()
            .find(|(_, l)| l.valid && l.tag == tag)
        {
            line.ready_at = line.ready_at.min(ready_at);
            line.last_used = tick;
            self.mru = base + i;
            return None;
        }
        let (way, victim) = set
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.last_used } else { 0 })
            .expect("associativity is at least 1");
        let evicted = victim.valid.then(|| {
            let set_index = (base / self.assoc) as u64;
            ((victim.tag << self.set_shift) | set_index) << self.line_shift
        });
        *victim = Line {
            tag,
            valid: true,
            ready_at,
            last_used: tick,
        };
        self.mru = base + way;
        evicted
    }

    /// Invalidates everything (used between benchmark runs).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B
        Cache::new(CacheParams {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x1000, 0), Lookup::Miss);
        c.install(0x1000, 0);
        assert_eq!(c.lookup(0x1000, 10), Lookup::Hit { wait: 0 });
        // Same line, different offset.
        assert_eq!(c.lookup(0x103f, 10), Lookup::Hit { wait: 0 });
        // Next line misses.
        assert_eq!(c.lookup(0x1040, 10), Lookup::Miss);
    }

    #[test]
    fn in_flight_fill_waits() {
        let mut c = small();
        c.install(0x2000, 150);
        assert_eq!(c.lookup(0x2000, 100), Lookup::Hit { wait: 50 });
        assert_eq!(c.lookup(0x2000, 200), Lookup::Hit { wait: 0 });
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets * line = 256).
        assert_eq!(c.install(0x0000, 0), None);
        assert_eq!(c.install(0x0100, 0), None);
        let _ = c.lookup(0x0000, 1); // make 0x0000 most recent
        let victim = c.install(0x0200, 0); // evicts 0x0100 (LRU)
        assert_eq!(victim, Some(0x0100), "victim line address is returned");
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0100));
        assert!(c.contains(0x0200));
    }

    #[test]
    fn eviction_reports_line_aligned_victim() {
        let mut c = small();
        // Offsets within the line must not leak into the victim address.
        c.install(0x0011, 0);
        c.install(0x0108, 0);
        let victim = c.install(0x0207, 0);
        assert_eq!(victim, Some(0x0000));
    }

    #[test]
    fn reinstall_tightens_ready_at() {
        let mut c = small();
        c.install(0x3000, 500);
        c.install(0x3000, 100); // demand fill while prefetch in flight
        assert_eq!(c.lookup(0x3000, 100), Lookup::Hit { wait: 0 });
    }

    #[test]
    fn flush_clears() {
        let mut c = small();
        c.install(0x1000, 0);
        c.flush();
        assert_eq!(c.lookup(0x1000, 0), Lookup::Miss);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        // Fill all four sets; each line stays resident.
        for s in 0..4u64 {
            c.install(s * 64, 0);
        }
        for s in 0..4u64 {
            assert!(c.contains(s * 64), "set {s}");
        }
    }
}
