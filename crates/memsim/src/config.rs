//! Processor configurations (the paper's Table 2).

/// Which cache level a software prefetch instruction fills.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CacheLevel {
    /// First-level data cache.
    L1,
    /// Second-level cache.
    L2,
}

impl std::fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLevel::L1 => f.write_str("L1"),
            CacheLevel::L2 => f.write_str("L2"),
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheParams {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheParams {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn sets(&self) -> u64 {
        let sets = self.size_bytes / (self.line_bytes * self.assoc as u64);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(
            sets.is_power_of_two() && self.line_bytes.is_power_of_two(),
            "cache geometry must be powers of two"
        );
        sets
    }
}

/// Full processor description used by the simulator and by the prefetch
/// optimizer's profitability analysis and instruction mapping.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcessorConfig {
    /// Display name.
    pub name: String,
    /// L1 data cache.
    pub l1: CacheParams,
    /// Unified L2 cache.
    pub l2: CacheParams,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// Number of (fully associative) DTLB entries.
    pub dtlb_entries: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Page-walk penalty in cycles on a DTLB miss.
    pub tlb_miss_penalty: u64,
    /// Which level a software prefetch instruction fills (P4: L2, Athlon:
    /// L1).
    pub swpf_target: CacheLevel,
    /// Whether the prefetch instruction is cancelled on a DTLB miss
    /// (Pentium 4) rather than walking the page table (Athlon).
    pub swpf_drops_on_tlb_miss: bool,
    /// Whether the hardware next-line prefetcher is enabled.
    pub hw_prefetch: bool,
}

impl ProcessorConfig {
    /// The 2 GHz Intel Pentium 4 of the paper's evaluation: 8 KB L1 with
    /// 64-byte lines, 256 KB L2 with 128-byte lines, 64 DTLB entries;
    /// software prefetch fills the L2 and is dropped on a DTLB miss.
    pub fn pentium4() -> Self {
        ProcessorConfig {
            name: "Pentium 4".to_string(),
            l1: CacheParams {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                assoc: 4,
                hit_latency: 2,
            },
            l2: CacheParams {
                size_bytes: 256 * 1024,
                line_bytes: 128,
                assoc: 8,
                hit_latency: 18,
            },
            mem_latency: 200,
            dtlb_entries: 64,
            page_bytes: 4096,
            tlb_miss_penalty: 55,
            swpf_target: CacheLevel::L2,
            swpf_drops_on_tlb_miss: true,
            hw_prefetch: true,
        }
    }

    /// The 1.2 GHz AMD Athlon MP: 64 KB L1 with 64-byte lines, 256 KB L2
    /// with 64-byte lines, 256 DTLB entries; software prefetch fills the L1
    /// and performs a page walk on a DTLB miss.
    pub fn athlon_mp() -> Self {
        ProcessorConfig {
            name: "Athlon MP".to_string(),
            l1: CacheParams {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                assoc: 2,
                hit_latency: 3,
            },
            l2: CacheParams {
                size_bytes: 256 * 1024,
                line_bytes: 64,
                assoc: 16,
                hit_latency: 11,
            },
            mem_latency: 180,
            dtlb_entries: 256,
            page_bytes: 4096,
            tlb_miss_penalty: 25,
            swpf_target: CacheLevel::L1,
            swpf_drops_on_tlb_miss: false,
            hw_prefetch: true,
        }
    }

    /// Line size, in bytes, of the level software prefetches fill. The
    /// profitability analysis compares strides against half of this (§3.3).
    pub fn swpf_line_bytes(&self) -> u64 {
        match self.swpf_target {
            CacheLevel::L1 => self.l1.line_bytes,
            CacheLevel::L2 => self.l2.line_bytes,
        }
    }

    /// Renders the Table 2 row for this processor.
    pub fn table2_row(&self) -> String {
        format!(
            "{:<12} {:>8} {:>13} {:>8} {:>13} {:>13}",
            self.name,
            self.l1.size_bytes / 1024,
            self.l1.line_bytes,
            self.l2.size_bytes / 1024,
            self.l2.line_bytes,
            self.dtlb_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters_match_paper() {
        let p4 = ProcessorConfig::pentium4();
        assert_eq!(p4.l1.size_bytes, 8 * 1024);
        assert_eq!(p4.l1.line_bytes, 64);
        assert_eq!(p4.l2.size_bytes, 256 * 1024);
        assert_eq!(p4.l2.line_bytes, 128);
        assert_eq!(p4.dtlb_entries, 64);
        assert_eq!(p4.swpf_target, CacheLevel::L2);
        assert!(p4.swpf_drops_on_tlb_miss);

        let amp = ProcessorConfig::athlon_mp();
        assert_eq!(amp.l1.size_bytes, 64 * 1024);
        assert_eq!(amp.l1.line_bytes, 64);
        assert_eq!(amp.l2.size_bytes, 256 * 1024);
        assert_eq!(amp.l2.line_bytes, 64);
        assert_eq!(amp.dtlb_entries, 256);
        assert_eq!(amp.swpf_target, CacheLevel::L1);
        assert!(!amp.swpf_drops_on_tlb_miss);
    }

    #[test]
    fn geometry_is_consistent() {
        for cfg in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
            assert!(cfg.l1.sets() > 0);
            assert!(cfg.l2.sets() > 0);
        }
    }

    #[test]
    fn swpf_line() {
        assert_eq!(ProcessorConfig::pentium4().swpf_line_bytes(), 128);
        assert_eq!(ProcessorConfig::athlon_mp().swpf_line_bytes(), 64);
    }
}
