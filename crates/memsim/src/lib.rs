//! Memory-system simulator: L1/L2 caches, DTLB, and software-prefetch
//! semantics for the two processors of the paper's Table 2.
//!
//! The paper's evaluation hinges on a handful of microarchitectural
//! mechanisms, all of which are first-class here:
//!
//! * **per-line fill timestamps** — a prefetched line only helps if it is
//!   issued early enough ("it must not be issued too late… nor too early",
//!   §1). A line installed by a prefetch carries a `ready_at` cycle; a
//!   demand access before that time waits for the remainder.
//! * **software prefetch target level** — the Pentium 4 prefetches into the
//!   L2, the Athlon MP into the L1 (§4, the explanation of the MolDyn
//!   results).
//! * **DTLB interaction** — the Pentium 4 cancels a prefetch instruction on
//!   a DTLB miss, so the paper maps intra-iteration prefetches to *guarded
//!   loads* there, which perform "TLB priming" (§3.3). The Athlon's
//!   prefetch instruction walks the page table instead.
//! * **hardware next-line prefetching** — both processors have hardware
//!   prefetchers, which is why the profitability analysis rejects strides
//!   smaller than half a cache line (§3.3).
//!
//! [`MemorySystem`] simulates one load/store stream (the paper's workloads
//! are single-threaded) and reports the miss-event counters used to
//! regenerate Figures 8–10.
//!
//! # Example
//!
//! ```
//! use spf_memsim::{MemorySystem, ProcessorConfig};
//!
//! let mut mem = MemorySystem::new(ProcessorConfig::pentium4());
//! let miss = mem.load(0x10_0000, 0);           // cold: TLB + L2 miss
//! let hit = mem.load(0x10_0008, miss);         // same line: L1 hit
//! assert!(miss > hit);
//!
//! // A timely software prefetch turns a future miss into an L2 hit
//! // (the P4's prefetch instruction fills the L2 level).
//! mem.software_prefetch(0x10_0400, hit);
//! let later = hit + 1_000;
//! assert_eq!(mem.load(0x10_0400, later), mem.config().l2.hit_latency);
//! assert_eq!(mem.stats().swpf_fills, 1);
//! ```

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod stats;
pub mod tlb;

pub use cache::Cache;
pub use config::{CacheLevel, CacheParams, ProcessorConfig};
pub use hierarchy::MemorySystem;
pub use stats::MemStats;
pub use tlb::Tlb;
