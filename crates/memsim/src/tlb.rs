//! A fully associative, LRU data TLB.
//!
//! Hot-path layout: entries live in a fixed-capacity boxed slice sized at
//! construction — lookups and inserts scan `entries[..len]` and never
//! allocate. (The original kept a growable `Vec` and evicted with
//! `swap_remove` + `push`; entry order within the array is irrelevant to
//! behaviour because pages are unique and LRU timestamps strictly
//! increase, so the in-place replacement used here produces identical
//! hit/miss/eviction decisions.)

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    page: u64,
    last_used: u64,
}

/// A fully associative translation lookaside buffer.
#[derive(Clone, Debug)]
pub struct Tlb {
    /// Fixed-capacity storage; only `entries[..len]` is live.
    entries: Box<[Entry]>,
    len: usize,
    page_shift: u32,
    tick: u64,
    /// Index of the most recently hit entry. Pure lookup accelerator: a
    /// hit through `mru` performs the same tick/`last_used` update the
    /// full scan would, so hit/miss/eviction decisions are unchanged —
    /// only the O(entries) scan is skipped on page-local access runs.
    mru: usize,
}

impl Tlb {
    /// Creates a TLB with `entries` slots for pages of `page_bytes`.
    pub fn new(entries: u32, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![Entry::default(); entries as usize].into_boxed_slice(),
            len: 0,
            page_shift: page_bytes.trailing_zeros(),
            tick: 0,
            mru: 0,
        }
    }

    #[inline(always)]
    fn page(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Looks up the page of `addr`; returns whether it hit (updating LRU).
    #[inline]
    pub fn lookup(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = self.page(addr);
        // Fast path: consecutive accesses overwhelmingly translate the
        // same page as the last hit.
        if self.mru < self.len && self.entries[self.mru].page == page {
            self.entries[self.mru].last_used = self.tick;
            return true;
        }
        if let Some((i, e)) = self.entries[..self.len]
            .iter_mut()
            .enumerate()
            .find(|(_, e)| e.page == page)
        {
            e.last_used = self.tick;
            self.mru = i;
            true
        } else {
            false
        }
    }

    /// Re-touches the entry hit by the immediately preceding lookup:
    /// exactly the `lookup` MRU fast path (tick advance + `last_used`
    /// refresh) for a caller that has already proven the page matches.
    /// Caller contract: no insert/flush since that lookup.
    #[inline(always)]
    pub(crate) fn touch_mru(&mut self) {
        self.tick += 1;
        self.entries[self.mru].last_used = self.tick;
    }

    /// Whether the page of `addr` is resident (no LRU update).
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let page = self.page(addr);
        self.entries[..self.len].iter().any(|e| e.page == page)
    }

    /// Inserts the page of `addr`, evicting the LRU entry if full.
    pub fn insert(&mut self, addr: u64) {
        self.tick += 1;
        let page = self.page(addr);
        let capacity = self.entries.len();
        let live = &mut self.entries[..self.len];
        if let Some(e) = live.iter_mut().find(|e| e.page == page) {
            e.last_used = self.tick;
            return;
        }
        let slot = if self.len == capacity {
            // Evict the LRU entry in place.
            live.iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("tlb has capacity")
        } else {
            self.len += 1;
            self.len - 1
        };
        self.entries[slot] = Entry {
            page,
            last_used: self.tick,
        };
        self.mru = slot;
    }

    /// Empties the TLB.
    pub fn flush(&mut self) {
        self.len = 0;
        self.mru = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.lookup(0x1000));
        t.insert(0x1000);
        assert!(t.lookup(0x1234)); // same page
        assert!(!t.lookup(0x2000)); // next page
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(2, 4096);
        t.insert(0x0000);
        t.insert(0x1000);
        assert!(t.lookup(0x0000)); // touch page 0
        t.insert(0x2000); // evicts page 1
        assert!(t.contains(0x0000));
        assert!(!t.contains(0x1000));
        assert!(t.contains(0x2000));
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(2, 4096);
        t.insert(0x0000);
        t.flush();
        assert!(!t.contains(0x0000));
    }

    #[test]
    fn insert_never_grows_past_capacity() {
        let mut t = Tlb::new(3, 4096);
        for p in 0..32u64 {
            t.insert(p * 4096);
        }
        // Only the three most recent pages are resident.
        assert!(t.contains(31 * 4096));
        assert!(t.contains(30 * 4096));
        assert!(t.contains(29 * 4096));
        assert!(!t.contains(28 * 4096));
    }
}
