//! A fully associative, LRU data TLB.

/// A fully associative translation lookaside buffer.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last_used)
    capacity: usize,
    page_shift: u32,
    tick: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots for pages of `page_bytes`.
    pub fn new(entries: u32, page_bytes: u64) -> Self {
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        Tlb {
            entries: Vec::with_capacity(entries as usize),
            capacity: entries as usize,
            page_shift: page_bytes.trailing_zeros(),
            tick: 0,
        }
    }

    fn page(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Looks up the page of `addr`; returns whether it hit (updating LRU).
    pub fn lookup(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = self.page(addr);
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.tick;
            true
        } else {
            false
        }
    }

    /// Whether the page of `addr` is resident (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        let page = self.page(addr);
        self.entries.iter().any(|e| e.0 == page)
    }

    /// Inserts the page of `addr`, evicting the LRU entry if full.
    pub fn insert(&mut self, addr: u64) {
        self.tick += 1;
        let page = self.page(addr);
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("tlb has capacity");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.tick));
    }

    /// Empties the TLB.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.lookup(0x1000));
        t.insert(0x1000);
        assert!(t.lookup(0x1234)); // same page
        assert!(!t.lookup(0x2000)); // next page
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(2, 4096);
        t.insert(0x0000);
        t.insert(0x1000);
        assert!(t.lookup(0x0000)); // touch page 0
        t.insert(0x2000); // evicts page 1
        assert!(t.contains(0x0000));
        assert!(!t.contains(0x1000));
        assert!(t.contains(0x2000));
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(2, 4096);
        t.insert(0x0000);
        t.flush();
        assert!(!t.contains(0x0000));
    }
}
