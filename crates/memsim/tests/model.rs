//! Model-based property tests: the flat-array [`Cache`] and the
//! fixed-capacity [`Tlb`] must behave exactly like naive reference models
//! (recency-ordered lists) on random operation streams — hits, misses,
//! waits, evictions, and LRU decisions all included.

use spf_memsim::cache::{Cache, Lookup};
use spf_memsim::config::CacheParams;
use spf_memsim::Tlb;
use spf_testkit::{cases, Rng};

// ---------------------------------------------------------------------
// Reference cache: per-set recency-ordered `Vec`s, most recent at the
// back. This is an executable restatement of "set-associative LRU with
// fill timestamps" with none of the production layout tricks.
// ---------------------------------------------------------------------

struct RefCache {
    sets: Vec<Vec<(u64, u64)>>, // (tag, ready_at), LRU order per set
    assoc: usize,
    line_shift: u32,
    set_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(p: CacheParams) -> Self {
        let sets = p.sets();
        RefCache {
            sets: vec![Vec::new(); sets as usize],
            assoc: p.assoc as usize,
            line_shift: p.line_bytes.trailing_zeros(),
            set_shift: (sets - 1).count_ones(),
            set_mask: sets - 1,
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.set_shift)
    }

    fn lookup(&mut self, addr: u64, now: u64) -> Lookup {
        let (s, tag) = self.locate(addr);
        let set = &mut self.sets[s];
        match set.iter().position(|(t, _)| *t == tag) {
            Some(i) => {
                let entry = set.remove(i);
                set.push(entry);
                Lookup::Hit {
                    wait: entry.1.saturating_sub(now),
                }
            }
            None => Lookup::Miss,
        }
    }

    fn contains(&self, addr: u64) -> bool {
        let (s, tag) = self.locate(addr);
        self.sets[s].iter().any(|(t, _)| *t == tag)
    }

    fn install(&mut self, addr: u64, ready_at: u64) {
        let (s, tag) = self.locate(addr);
        let assoc = self.assoc;
        let set = &mut self.sets[s];
        match set.iter().position(|(t, _)| *t == tag) {
            Some(i) => {
                let (t, r) = set.remove(i);
                set.push((t, r.min(ready_at)));
            }
            None => {
                if set.len() == assoc {
                    set.remove(0); // least recently used
                }
                set.push((tag, ready_at));
            }
        }
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

fn arb_cache_params(rng: &mut Rng) -> CacheParams {
    let line_bytes = 1u64 << rng.u64_in(5, 7); // 32..128 B
    let assoc = 1u32 << rng.u64_in(0, 2); // 1..4 ways
    let sets = 1u64 << rng.u64_in(0, 3); // 1..8 sets
    CacheParams {
        size_bytes: sets * assoc as u64 * line_bytes,
        line_bytes,
        assoc,
        hit_latency: 1,
    }
}

#[test]
fn cache_matches_reference_model() {
    cases(128, "flat cache matches list-LRU reference", |rng| {
        let params = arb_cache_params(rng);
        let mut real = Cache::new(params);
        let mut model = RefCache::new(params);
        // A small address pool forces set conflicts and evictions.
        let pool: Vec<u64> = (0..24).map(|_| rng.u64_in(0, 0x2000)).collect();
        let mut now = 0u64;
        for _ in 0..rng.usize_in(50, 399) {
            let addr = pool[rng.index(pool.len())];
            match rng.index(4) {
                0 => {
                    let ready = now + rng.u64_in(0, 99);
                    real.install(addr, ready);
                    model.install(addr, ready);
                }
                1 => assert_eq!(
                    real.contains(addr),
                    model.contains(addr),
                    "contains({addr:#x}) with {params:?}"
                ),
                2 if rng.chance(1, 20) => {
                    real.flush();
                    model.flush();
                }
                _ => {
                    assert_eq!(
                        real.lookup(addr, now),
                        model.lookup(addr, now),
                        "lookup({addr:#x}) at {now} with {params:?}"
                    );
                }
            }
            now += rng.u64_in(0, 9);
        }
    });
}

// ---------------------------------------------------------------------
// Reference TLB: one recency-ordered list of pages.
// ---------------------------------------------------------------------

struct RefTlb {
    pages: Vec<u64>, // LRU order, most recent at the back
    capacity: usize,
    page_shift: u32,
}

impl RefTlb {
    fn new(entries: usize, page_bytes: u64) -> Self {
        RefTlb {
            pages: Vec::new(),
            capacity: entries,
            page_shift: page_bytes.trailing_zeros(),
        }
    }

    fn lookup(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        match self.pages.iter().position(|&p| p == page) {
            Some(i) => {
                self.pages.remove(i);
                self.pages.push(page);
                true
            }
            None => false,
        }
    }

    fn contains(&self, addr: u64) -> bool {
        self.pages.contains(&(addr >> self.page_shift))
    }

    fn insert(&mut self, addr: u64) {
        let page = addr >> self.page_shift;
        if let Some(i) = self.pages.iter().position(|&p| p == page) {
            self.pages.remove(i);
        } else if self.pages.len() == self.capacity {
            self.pages.remove(0);
        }
        self.pages.push(page);
    }

    fn flush(&mut self) {
        self.pages.clear();
    }
}

#[test]
fn tlb_matches_reference_model() {
    cases(
        128,
        "fixed-capacity TLB matches list-LRU reference",
        |rng| {
            let entries = rng.u64_in(1, 8) as u32;
            let page_bytes = 4096u64;
            let mut real = Tlb::new(entries, page_bytes);
            let mut model = RefTlb::new(entries as usize, page_bytes);
            // Few distinct pages so reuse, eviction, and re-insertion all occur.
            let pages: Vec<u64> = (0..12).map(|_| rng.u64_in(0, 19) * page_bytes).collect();
            for _ in 0..rng.usize_in(50, 399) {
                let addr = pages[rng.index(pages.len())] + rng.u64_in(0, page_bytes - 1);
                match rng.index(4) {
                    0 => {
                        real.insert(addr);
                        model.insert(addr);
                    }
                    1 => assert_eq!(
                        real.contains(addr),
                        model.contains(addr),
                        "contains({addr:#x})"
                    ),
                    2 if rng.chance(1, 20) => {
                        real.flush();
                        model.flush();
                    }
                    _ => assert_eq!(real.lookup(addr), model.lookup(addr), "lookup({addr:#x})"),
                }
            }
        },
    );
}
