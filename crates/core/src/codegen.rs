//! Generation of prefetching code from an annotated load dependence graph
//! (paper §3.3).
//!
//! Three code shapes are produced, anchored at a node `Lx` whose
//! inter-iteration stride is `d` and with scheduling distance `c`:
//!
//! * **inter-iteration stride prefetching** — when every LDG successor of
//!   `Lx` also has an inter-iteration pattern (or there is none):
//!   `prefetch(A(Lx) + d*c)`;
//! * **dereference-based prefetching** — when some successor `Ly` lacks an
//!   inter-iteration pattern: `a = spec_load(A(Lx) + d*c);
//!   prefetch(F[Lx,Ly](a))` where `F` adds the constant offset mapping the
//!   value loaded by `Lx` to the address used by `Ly`;
//! * **intra-iteration stride prefetching** — additionally, for every `Lz`
//!   with an intra-iteration pattern with `Ly` (directly or transitively):
//!   `prefetch(F[Lx,Ly](a) + S[Ly,Lz])`.
//!
//! Mapping to hardware instructions follows §3.3: plain prefetches use the
//! processor's prefetch instruction; the dereference-based and
//! intra-iteration prefetches use a guarded load on processors whose
//! prefetch instruction is cancelled by a DTLB miss (the Pentium 4), which
//! doubles as TLB priming.

use std::collections::{HashMap, HashSet};

use spf_analysis::Provenance;
use spf_heap::Layout;
use spf_ir::{Function, Instr, InstrRef, PrefetchAddr, PrefetchKind, Ty};
use spf_memsim::ProcessorConfig;
use spf_trace::{PlannedShape, SuppressReason, TraceEvent, TraceSink};

use crate::ldg::{Ldg, LdgNodeId};
use crate::options::{PrefetchMode, PrefetchOptions};
use crate::profit::{has_dependent, stride_is_profitable, IssuedLines};
use crate::report::{GeneratedKind, GeneratedPrefetch};

/// How prefetches are mapped to hardware instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum GuardedPolicy {
    /// The paper's mapping: guarded loads for dereference-based and
    /// intra-iteration prefetches on processors that cancel prefetches on
    /// DTLB misses, or when the stride exceeds half a page; the hardware
    /// prefetch instruction otherwise.
    #[default]
    Auto,
    /// Always use the hardware prefetch instruction (ablation).
    AlwaysHardware,
    /// Always use guarded loads (ablation).
    AlwaysGuarded,
}

impl GuardedPolicy {
    /// The discipline the speculation lint should enforce for code
    /// generated under this policy on a processor that does (or does not)
    /// drop software prefetches on DTLB misses. `spf-analysis` cannot
    /// depend on this crate, so the mapping lives here.
    pub fn lint_check(self, swpf_drops_on_tlb_miss: bool) -> spf_analysis::PolicyCheck {
        match self {
            GuardedPolicy::AlwaysHardware => spf_analysis::PolicyCheck::AllHardware,
            GuardedPolicy::AlwaysGuarded => spf_analysis::PolicyCheck::AllGuarded,
            GuardedPolicy::Auto if swpf_drops_on_tlb_miss => spf_analysis::PolicyCheck::AutoDrops,
            GuardedPolicy::Auto => spf_analysis::PolicyCheck::AutoKeeps,
        }
    }
}

fn suppressed(site: InstrRef, reason: SuppressReason) -> TraceEvent {
    TraceEvent::Suppressed {
        block: site.block.index() as u32,
        index: site.index,
        reason,
    }
}

fn planned(site: InstrRef, shape: PlannedShape, param: i64) -> TraceEvent {
    TraceEvent::Planned {
        block: site.block.index() as u32,
        index: site.index,
        shape,
        param,
    }
}

/// Plans and applies prefetch insertions for one method.
#[derive(Debug)]
pub struct PrefetchCodegen<'a> {
    layout: &'a Layout,
    proc: &'a ProcessorConfig,
    options: &'a PrefetchOptions,
}

impl<'a> PrefetchCodegen<'a> {
    /// Creates a code generator.
    pub fn new(
        layout: &'a Layout,
        proc: &'a ProcessorConfig,
        options: &'a PrefetchOptions,
    ) -> Self {
        PrefetchCodegen {
            layout,
            proc,
            options,
        }
    }

    fn pick_kind(&self, dereference_like: bool, displacement: i64) -> PrefetchKind {
        match self.options.guarded_policy {
            GuardedPolicy::AlwaysHardware => PrefetchKind::Hardware,
            GuardedPolicy::AlwaysGuarded => PrefetchKind::GuardedLoad,
            GuardedPolicy::Auto => {
                let big_stride = displacement.unsigned_abs() > self.proc.page_bytes / 2;
                if (dereference_like && self.proc.swpf_drops_on_tlb_miss) || big_stride {
                    PrefetchKind::GuardedLoad
                } else {
                    PrefetchKind::Hardware
                }
            }
        }
    }

    /// Address expression of the data loaded by the instruction at `site`,
    /// displaced by `extra` bytes; `None` for loads without a register base
    /// (statics).
    fn addr_of(&self, func: &Function, site: InstrRef, extra: i64) -> Option<PrefetchAddr> {
        Some(match func.instr(site) {
            Instr::GetField { obj, field, .. } => PrefetchAddr::FieldOf {
                base: *obj,
                delta: self.layout.field_offset(*field) as i64 + extra,
            },
            Instr::ALoad { arr, idx, elem, .. } => PrefetchAddr::ArrayElem {
                arr: *arr,
                idx: *idx,
                scale: elem.size() as u8,
                delta: spf_heap::ARRAY_DATA_OFFSET as i64 + extra,
            },
            Instr::ArrayLen { arr, .. } => PrefetchAddr::FieldOf {
                base: *arr,
                delta: 8 + extra, // array length word
            },
            _ => return None,
        })
    }

    /// Provenance tag for a prefetch covering `node`, reached through an
    /// anchor whose stride is (or is not) statically proved. In the legacy
    /// modes no node carries a static proof, so everything is `Dynamic`.
    fn provenance_of(node: &crate::ldg::LdgNode, through_static_anchor: bool) -> Provenance {
        if node.static_stride.is_some() {
            if node.recorded {
                Provenance::Hybrid
            } else {
                Provenance::Static
            }
        } else if through_static_anchor {
            Provenance::Hybrid
        } else {
            Provenance::Dynamic
        }
    }

    /// The constant offset `F[Lx,Ly]`: maps the value loaded by `Lx` (a
    /// reference) to the address used by `Ly`; `None` when `Ly`'s address
    /// is not a constant offset from that reference.
    fn f_offset(&self, func: &Function, ly: InstrRef) -> Option<i64> {
        Some(match func.instr(ly) {
            Instr::GetField { field, .. } => self.layout.field_offset(*field) as i64,
            Instr::ALoad { .. } => spf_heap::ARRAY_DATA_OFFSET as i64, // element 0
            Instr::ArrayLen { .. } => 8,
            _ => return None,
        })
    }

    /// Plans prefetch insertions for one annotated loop LDG.
    ///
    /// `work` is the function being optimized (new registers for spec-loads
    /// are allocated on it); `exclude` are nodes folded out because their
    /// nested loop has a large trip count; `already` are anchor sites
    /// handled by an inner loop's pass; `sink` receives a
    /// [`TraceEvent::Suppressed`] / [`TraceEvent::Planned`] for every
    /// profitability decision (pass a `NoopSink` to compile them out).
    /// Returns `(site → instructions to insert after it, report entries)`.
    pub fn plan<S: TraceSink>(
        &self,
        work: &mut Function,
        ldg: &Ldg,
        exclude: &HashSet<LdgNodeId>,
        already: &mut HashSet<InstrRef>,
        sink: &mut S,
    ) -> (HashMap<InstrRef, Vec<Instr>>, Vec<GeneratedPrefetch>) {
        let mut insertions: HashMap<InstrRef, Vec<Instr>> = HashMap::new();
        let mut report = Vec::new();
        if self.options.mode == PrefetchMode::Off {
            return (insertions, report);
        }
        let line = self.proc.swpf_line_bytes();
        let mut issued = IssuedLines::new();
        let c = self.options.distance as i64;

        for lx in ldg.node_ids() {
            if exclude.contains(&lx) {
                continue;
            }
            let node = ldg.node(lx);
            if already.contains(&node.site) {
                continue;
            }
            let Some(d) = node.inter_stride else {
                continue;
            };
            if d == 0 {
                if S::ENABLED {
                    sink.emit(suppressed(node.site, SuppressReason::ZeroStride));
                }
                continue; // loop-invariant address
            }
            if self.options.profitability && !has_dependent(work, node.site) {
                if S::ENABLED {
                    sink.emit(suppressed(node.site, SuppressReason::NoDependent));
                }
                continue; // condition 1
            }
            let Some(anchor_addr) = self.addr_of(work, node.site, d * c) else {
                continue;
            };

            let successors: Vec<&crate::ldg::LdgEdge> = ldg
                .successors(lx)
                .filter(|e| !exclude.contains(&e.to))
                .collect();
            // A successor triggers dereference-based prefetching only if
            // it lacks an inter-iteration pattern *and* actually executed
            // often enough during inspection — prefetching for a load that
            // rarely runs (e.g. inside a rarely taken branch) is waste.
            let deref_worthy = |e: &&crate::ldg::LdgEdge| {
                let to = ldg.node(e.to);
                to.inter_stride.is_none() && to.samples >= self.options.min_samples
            };
            let needs_deref =
                self.options.mode.intra_patterns() && successors.iter().any(deref_worthy);

            if !needs_deref {
                // Plain inter-iteration stride prefetching. Condition 3
                // applies here: prefetching Lx's own data is useless when
                // the stride is within the line the previous iteration
                // already fetched. (A spec-load anchor below is exempt —
                // the paper's Figure 4 anchors on L4's 4-byte stride.)
                //
                // Condition 2 (line sharing) is checked against the *base
                // register* of the address: several field loads off the
                // same object apparently share its cache line, so only the
                // first gets a prefetch.
                let (claim_key, claim_off) = match work.instr(node.site) {
                    Instr::GetField { obj, field, .. } => (
                        0x8000_0000 | obj.index() as u32,
                        self.layout.field_offset(*field) as i64 + d * c,
                    ),
                    Instr::ALoad { arr, .. } => (
                        0x8000_0000 | arr.index() as u32,
                        spf_heap::ARRAY_DATA_OFFSET as i64 + d * c,
                    ),
                    Instr::ArrayLen { arr, .. } => (0x8000_0000 | arr.index() as u32, 8 + d * c),
                    _ => (lx.index() as u32, 0),
                };
                if self.options.profitability {
                    if !stride_is_profitable(d, line) {
                        if S::ENABLED {
                            sink.emit(suppressed(node.site, SuppressReason::StrideTooSmall));
                        }
                        continue;
                    }
                    if !issued.claim(claim_key, claim_off, line) {
                        if S::ENABLED {
                            sink.emit(suppressed(node.site, SuppressReason::LineShared));
                        }
                        continue;
                    }
                }
                let kind = self.pick_kind(false, d * c);
                insertions
                    .entry(node.site)
                    .or_default()
                    .push(Instr::Prefetch {
                        addr: anchor_addr,
                        kind,
                    });
                already.insert(node.site);
                if S::ENABLED {
                    sink.emit(planned(node.site, PlannedShape::InterStride, d));
                }
                report.push(GeneratedPrefetch {
                    anchor: node.site,
                    kind: GeneratedKind::InterStride { stride: d },
                    mapped: kind,
                    provenance: Self::provenance_of(node, false),
                });
                continue;
            }

            // Dereference-based prefetching through a speculative load.
            let a = work.new_reg(Ty::Ref);
            let insert = insertions.entry(node.site).or_default();
            insert.push(Instr::SpecLoad {
                dst: a,
                addr: anchor_addr,
            });
            already.insert(node.site);
            if S::ENABLED {
                sink.emit(planned(node.site, PlannedShape::SpeculativeLoad, d));
            }
            report.push(GeneratedPrefetch {
                anchor: node.site,
                kind: GeneratedKind::SpeculativeLoad { stride: d },
                mapped: PrefetchKind::GuardedLoad,
                provenance: Self::provenance_of(node, false),
            });
            let anchor_static = node.static_stride.is_some();
            for e in &successors {
                let ly = e.to;
                if !deref_worthy(e) {
                    continue; // covered by its own inter pattern, or cold
                }
                let Some(f_off) = self.f_offset(work, ldg.node(ly).site) else {
                    continue;
                };
                let anchor_key = lx.index() as u32;
                if !self.options.profitability || issued.claim(anchor_key, f_off, line) {
                    let kind = self.pick_kind(true, 0);
                    insert.push(Instr::Prefetch {
                        addr: PrefetchAddr::FieldOf {
                            base: a,
                            delta: f_off,
                        },
                        kind,
                    });
                    if S::ENABLED {
                        sink.emit(planned(ldg.node(ly).site, PlannedShape::Dereference, f_off));
                    }
                    report.push(GeneratedPrefetch {
                        anchor: ldg.node(ly).site,
                        kind: GeneratedKind::Dereference { offset: f_off },
                        mapped: kind,
                        provenance: Self::provenance_of(ldg.node(ly), anchor_static),
                    });
                } else if S::ENABLED {
                    sink.emit(suppressed(ldg.node(ly).site, SuppressReason::LineShared));
                }
                // Intra-iteration stride prefetching: Lz reachable from Ly
                // through edges with intra patterns, directly or
                // transitively.
                let mut stack: Vec<(LdgNodeId, i64)> = vec![(ly, 0)];
                let mut seen: HashSet<LdgNodeId> = [ly].into_iter().collect();
                while let Some((node_id, acc)) = stack.pop() {
                    for e2 in ldg.successors(node_id) {
                        let Some(s) = e2.intra_stride else { continue };
                        if exclude.contains(&e2.to) || !seen.insert(e2.to) {
                            continue;
                        }
                        let total = acc + s;
                        stack.push((e2.to, total));
                        let offset = f_off + total;
                        if self.options.profitability && !issued.claim(anchor_key, offset, line) {
                            if S::ENABLED {
                                sink.emit(suppressed(
                                    ldg.node(e2.to).site,
                                    SuppressReason::LineShared,
                                ));
                            }
                            continue;
                        }
                        let kind = self.pick_kind(true, total);
                        insert.push(Instr::Prefetch {
                            addr: PrefetchAddr::FieldOf {
                                base: a,
                                delta: offset,
                            },
                            kind,
                        });
                        if S::ENABLED {
                            sink.emit(planned(
                                ldg.node(e2.to).site,
                                PlannedShape::IntraStride,
                                total,
                            ));
                        }
                        report.push(GeneratedPrefetch {
                            anchor: ldg.node(e2.to).site,
                            kind: GeneratedKind::IntraStride { stride: total },
                            mapped: kind,
                            provenance: Self::provenance_of(ldg.node(e2.to), anchor_static),
                        });
                    }
                }
            }
        }
        (insertions, report)
    }
}

/// Applies planned insertions: rebuilds `func`'s blocks with each planned
/// instruction sequence spliced in immediately after its anchor site.
pub fn apply_insertions(func: &mut Function, insertions: &HashMap<InstrRef, Vec<Instr>>) {
    if insertions.is_empty() {
        return;
    }
    for b in func.block_ids().collect::<Vec<_>>() {
        let needs: bool = insertions.keys().any(|s| s.block == b);
        if !needs {
            continue;
        }
        let old = std::mem::take(&mut func.block_mut(b).instrs);
        let mut rebuilt = Vec::with_capacity(old.len() + 4);
        for (i, instr) in old.into_iter().enumerate() {
            rebuilt.push(instr);
            if let Some(extra) = insertions.get(&InstrRef::new(b, i)) {
                rebuilt.extend(extra.iter().cloned());
            }
        }
        func.block_mut(b).instrs = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::{ElemTy, ProgramBuilder};

    #[test]
    fn guarded_policy_auto_follows_processor() {
        let layout_program = spf_ir::Program::new();
        let layout = Layout::compute(&layout_program);
        let opts = PrefetchOptions::default();
        let p4 = ProcessorConfig::pentium4();
        let amp = ProcessorConfig::athlon_mp();
        let cg_p4 = PrefetchCodegen::new(&layout, &p4, &opts);
        let cg_amp = PrefetchCodegen::new(&layout, &amp, &opts);
        // Plain inter prefetch: hardware on both.
        assert_eq!(cg_p4.pick_kind(false, 256), PrefetchKind::Hardware);
        assert_eq!(cg_amp.pick_kind(false, 256), PrefetchKind::Hardware);
        // Dereference-like: guarded on the P4, hardware on the Athlon.
        assert_eq!(cg_p4.pick_kind(true, 0), PrefetchKind::GuardedLoad);
        assert_eq!(cg_amp.pick_kind(true, 0), PrefetchKind::Hardware);
        // Huge stride (> half page): guarded everywhere (TLB priming).
        assert_eq!(cg_amp.pick_kind(false, 3000), PrefetchKind::GuardedLoad);
    }

    #[test]
    fn apply_insertions_splices_after_site() {
        let mut pb = ProgramBuilder::new();
        let (_c, fs) = pb.add_class("N", &[("v", ElemTy::Ref)]);
        let mut b = pb.function("f", &[spf_ir::Ty::Ref], Some(spf_ir::Ty::Ref));
        let o = b.param(0);
        let v = b.getfield(o, fs[0]);
        b.ret(Some(v));
        let m = b.finish();
        let p = pb.finish();
        let mut f = p.method(m).func().clone();
        let site = f
            .instr_sites()
            .find(|&s| matches!(f.instr(s), Instr::GetField { .. }))
            .unwrap();
        let mut ins = HashMap::new();
        ins.insert(
            site,
            vec![Instr::Prefetch {
                addr: PrefetchAddr::FieldOf { base: o, delta: 64 },
                kind: PrefetchKind::Hardware,
            }],
        );
        let before = f.instr_count();
        apply_insertions(&mut f, &ins);
        assert_eq!(f.instr_count(), before + 1);
        let next = InstrRef::new(site.block, site.index as usize + 1);
        assert!(matches!(f.instr(next), Instr::Prefetch { .. }));
        spf_ir::verify::verify(&p, &f).unwrap();
    }
}
