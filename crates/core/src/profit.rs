//! Profitability analysis (paper §3.3).
//!
//! Prefetch code is generated for a load `L` only when:
//!
//! 1. one or more instructions are data dependent on `L`;
//! 2. the data accessed by `L` does not apparently share a cache line with
//!    data for which prefetch code is already issued (tracked during code
//!    generation by [`IssuedLines`]);
//! 3. if `L` has an inter-iteration stride pattern, the stride is larger
//!    than half of the cache line filled by software prefetches (smaller
//!    strides are already covered by the previous iteration's prefetch and
//!    by the hardware prefetcher).

use spf_ir::{Function, InstrRef, Reg};

/// Whether any instruction (or terminator) of `func` reads the register
/// defined by the load at `site` — the paper's condition 1. Registers are
/// mostly single-assignment in this IR, so register identity is an accurate
/// proxy for data dependence.
pub fn has_dependent(func: &Function, site: InstrRef) -> bool {
    let Some(dst) = func.instr(site).dst() else {
        return false;
    };
    let mut uses: Vec<Reg> = Vec::new();
    for b in func.block_ids() {
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            if b == site.block && i as u32 == site.index {
                continue;
            }
            uses.clear();
            instr.uses(&mut uses);
            if uses.contains(&dst) {
                return true;
            }
        }
        uses.clear();
        func.block(b).term.uses(&mut uses);
        if uses.contains(&dst) {
            return true;
        }
    }
    false
}

/// Whether an inter-iteration stride passes condition 3 for a target cache
/// line of `line_bytes`.
pub fn stride_is_profitable(stride: i64, line_bytes: u64) -> bool {
    stride.unsigned_abs() > line_bytes / 2
}

/// Tracks, per anchor value, the byte offsets for which prefetch code has
/// already been issued, implementing condition 2 within one loop.
#[derive(Clone, Debug, Default)]
pub struct IssuedLines {
    issued: Vec<(u32, i64)>, // (anchor key, offset)
}

impl IssuedLines {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to claim `offset` (relative to anchor `key`); returns `false`
    /// if a prefetch within the same `line_bytes`-sized window was already
    /// issued for that anchor.
    pub fn claim(&mut self, key: u32, offset: i64, line_bytes: u64) -> bool {
        let line = line_bytes as i64;
        if self
            .issued
            .iter()
            .any(|&(k, o)| k == key && (offset - o).abs() < line)
        {
            return false;
        }
        self.issued.push((key, offset));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::{ElemTy, ProgramBuilder, Ty};

    #[test]
    fn dependent_detection() {
        let mut pb = ProgramBuilder::new();
        let (_c, fs) = pb.add_class("N", &[("v", ElemTy::I32), ("w", ElemTy::I32)]);
        let mut b = pb.function("f", &[Ty::Ref], Some(Ty::I32));
        let o = b.param(0);
        let v = b.getfield(o, fs[0]); // used by ret
        let _w = b.getfield(o, fs[1]); // dead
        b.ret(Some(v));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let sites: Vec<_> = f
            .instr_sites()
            .filter(|&s| f.instr(s).is_ldg_load())
            .collect();
        assert!(has_dependent(f, sites[0]), "v flows into ret");
        assert!(!has_dependent(f, sites[1]), "w is dead");
    }

    #[test]
    fn stride_thresholds() {
        assert!(!stride_is_profitable(0, 128));
        assert!(!stride_is_profitable(64, 128));
        assert!(stride_is_profitable(65, 128));
        assert!(stride_is_profitable(-80, 128));
        assert!(stride_is_profitable(40, 64));
    }

    #[test]
    fn issued_lines_dedup() {
        let mut il = IssuedLines::new();
        assert!(il.claim(0, 0, 64));
        assert!(!il.claim(0, 32, 64), "same line as offset 0");
        assert!(il.claim(0, 64, 64));
        assert!(il.claim(1, 16, 64), "different anchor");
        assert!(!il.claim(0, -63, 64));
        assert!(il.claim(0, -64, 64));
    }
}
