//! Stride prefetching by dynamically inspecting objects (PLDI 2003).
//!
//! This crate is the paper's contribution. Given a method about to be
//! JIT-compiled — with the *actual values of its parameters* in hand — the
//! optimizer:
//!
//! 1. builds a loop nesting forest and walks it in postorder (§3);
//! 2. for each loop, builds a **load dependence graph** ([`ldg`]) whose
//!    nodes are the reference-chasing loads in the loop and whose edges are
//!    direct data dependences (§3.1);
//! 3. performs **object inspection** ([`inspect`]): partially interprets the
//!    method from its entry, side-effect-free, running the target loop a
//!    small number of times and recording the addresses each candidate load
//!    touches (§3.2);
//! 4. detects **inter-iteration** stride patterns on nodes and
//!    **intra-iteration** stride patterns on adjacent pairs ([`stride`]);
//! 5. generates prefetching code ([`codegen`]) — plain stride prefetches,
//!    dereference-based prefetches through a speculative load, and
//!    intra-iteration stride prefetches — subject to a profitability
//!    analysis ([`profit`]) and the hardware-mapping rules of §3.3.
//!
//! The one-call entry point is [`StridePrefetcher::optimize`].
//!
//! # Example
//!
//! ```
//! use spf_core::{PrefetchOptions, StridePrefetcher};
//! use spf_heap::{Heap, Layout, Value, ARRAY_DATA_OFFSET};
//! use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};
//! use spf_memsim::ProcessorConfig;
//!
//! // A loop over an array of 80-byte objects, allocated back to back.
//! let mut pb = ProgramBuilder::new();
//! let (node, nf) = pb.add_class("Node", &[
//!     ("v", ElemTy::F64), ("p0", ElemTy::I64), ("p1", ElemTy::I64),
//!     ("p2", ElemTy::I64), ("p3", ElemTy::I64), ("p4", ElemTy::I64),
//!     ("p5", ElemTy::I64), ("p6", ElemTy::I64),
//! ]);
//! let mut b = pb.function("sum", &[Ty::Ref], Some(Ty::I32));
//! let arr = b.param(0);
//! let acc = b.new_reg(Ty::F64);
//! let z = b.const_f64(0.0);
//! b.move_(acc, z);
//! b.for_i32(0, 1, CmpOp::Lt, |b| b.arraylen(arr), |b, i| {
//!     let o = b.aload(arr, i, ElemTy::Ref);
//!     let v = b.getfield(o, nf[0]);
//!     let s = b.add(acc, v);
//!     b.move_(acc, s);
//! });
//! let out = b.convert(spf_ir::Conv::F64ToI32, acc);
//! b.ret(Some(out));
//! let sum = b.finish();
//! let program = pb.finish();
//!
//! // Live heap data: what the JIT sees at compile time.
//! let mut heap = Heap::new(Layout::compute(&program), 1 << 20);
//! let a = heap.alloc_array(ElemTy::Ref, 64).unwrap();
//! for i in 0..64 {
//!     let n = heap.alloc_object(node).unwrap();
//!     heap.write(a + ARRAY_DATA_OFFSET + 8 * i, ElemTy::Ref, Value::Ref(n)).unwrap();
//! }
//!
//! // Optimize with the actual argument values (object inspection!).
//! let opt = StridePrefetcher::new(PrefetchOptions::inter_intra());
//! let outcome = opt.optimize(
//!     &program,
//!     program.method(sum).func(),
//!     &heap,
//!     &[],
//!     &[Value::Ref(a)],
//!     &ProcessorConfig::athlon_mp(),
//! );
//! assert!(outcome.report.total_prefetches > 0);
//! ```
//!
//! [`offline`] implements the off-line stride-profiling discovery of Wu et
//! al. as an ablation: the same code generator driven by an instrumented
//! address trace instead of object inspection.

pub mod codegen;
pub mod inspect;
pub mod ldg;
pub mod offline;
pub mod options;
pub mod pipeline;
pub mod profit;
pub mod report;
pub mod stride;

pub use codegen::GuardedPolicy;
pub use inspect::{InspectionResult, Inspector};
pub use ldg::{Ldg, LdgNodeId};
pub use options::{PrefetchMode, PrefetchOptions};
pub use pipeline::{
    OptimizeOutcome, StridePrefetcher, INSPECT_CYCLES_PER_SAMPLE, INSPECT_CYCLES_PER_STEP,
};
pub use report::{LoopReport, MethodReport, StrideCrossCheck};
pub use stride::resolve_stride;
