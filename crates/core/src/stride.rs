//! Stride pattern detection over inspection traces (paper §3.2).
//!
//! A load has an **inter-iteration** stride pattern when the differences
//! between the addresses of its successive executions are dominated by one
//! constant; an adjacent pair `(Ly, Lz)` of the load dependence graph has an
//! **intra-iteration** stride pattern when, pairing their executions within
//! each iteration, the address differences `A(Lz) − A(Ly)` are dominated by
//! one constant. "Dominated" means at least the configured majority (75% in
//! the paper) of the collected strides are identical.

use std::collections::HashMap;

use spf_heap::Addr;
use spf_ir::InstrRef;

use crate::ldg::Ldg;
use crate::options::PrefetchOptions;

/// Returns the dominant value of `samples` if it reaches the `majority`
/// fraction and there are at least `min_samples` samples.
pub fn dominant_stride(samples: &[i64], majority: f64, min_samples: usize) -> Option<i64> {
    if samples.len() < min_samples {
        return None;
    }
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for &s in samples {
        *counts.entry(s).or_insert(0) += 1;
    }
    let (&best, &n) = counts.iter().max_by_key(|(_, &n)| n)?;
    if n as f64 >= majority * samples.len() as f64 {
        Some(best)
    } else {
        None
    }
}

/// Strides between successive executions of one load.
pub fn inter_iteration_samples(trace: &[(u32, Addr)]) -> Vec<i64> {
    trace
        .windows(2)
        .map(|w| w[1].1 as i64 - w[0].1 as i64)
        .collect()
}

/// Strides between paired executions of two loads within each iteration:
/// the k-th execution of `from` is paired with the k-th execution of `to`
/// in the same iteration.
pub fn intra_iteration_samples(from: &[(u32, Addr)], to: &[(u32, Addr)]) -> Vec<i64> {
    let mut out = Vec::new();
    let mut fi = 0usize;
    let mut ti = 0usize;
    while fi < from.len() && ti < to.len() {
        let (iter_f, _) = from[fi];
        let (iter_t, _) = to[ti];
        match iter_f.cmp(&iter_t) {
            std::cmp::Ordering::Less => fi += 1,
            std::cmp::Ordering::Greater => ti += 1,
            std::cmp::Ordering::Equal => {
                // Pair the runs of this iteration positionally.
                let fstart = fi;
                let tstart = ti;
                while fi < from.len() && from[fi].0 == iter_f {
                    fi += 1;
                }
                while ti < to.len() && to[ti].0 == iter_t {
                    ti += 1;
                }
                for k in 0..(fi - fstart).min(ti - tstart) {
                    out.push(to[tstart + k].1 as i64 - from[fstart + k].1 as i64);
                }
            }
        }
    }
    out
}

/// Resolves the stride a site's prefetch is emitted from when both a
/// static proof and an inspection-derived stride exist — the precedence
/// rule of static-first compilation.
///
/// Under `static_first`, the proof wins: inspection samples a handful of
/// iterations against one heap snapshot, while an affine proof holds for
/// every iteration on every heap. In the legacy modes the *dynamic* side
/// wins (the proof is record-only), reproducing the paper's behaviour
/// where inspection sees through data-dependent layouts the affine model
/// cannot express.
pub fn resolve_stride(
    static_first: bool,
    statically: Option<i64>,
    inspected: Option<i64>,
) -> Option<i64> {
    if static_first {
        statically.or(inspected)
    } else {
        inspected
    }
}

/// Annotates `ldg` with inter-iteration strides on nodes and
/// intra-iteration strides on edges, from the `traces` of one inspection.
pub fn annotate_ldg(
    ldg: &mut Ldg,
    traces: &HashMap<InstrRef, Vec<(u32, Addr)>>,
    options: &PrefetchOptions,
) {
    for id in ldg.node_ids().collect::<Vec<_>>() {
        let site = ldg.node(id).site;
        if let Some(trace) = traces.get(&site) {
            let samples = inter_iteration_samples(trace);
            let node = ldg.node_mut(id);
            node.samples = trace.len();
            node.inter_stride = dominant_stride(&samples, options.majority, options.min_samples);
        }
    }
    let sites: Vec<(InstrRef, InstrRef)> = ldg
        .edges()
        .iter()
        .map(|e| (ldg.node(e.from).site, ldg.node(e.to).site))
        .collect();
    for (edge, (from_site, to_site)) in (0..sites.len()).zip(sites) {
        let (Some(from), Some(to)) = (traces.get(&from_site), traces.get(&to_site)) else {
            continue;
        };
        let samples = intra_iteration_samples(from, to);
        ldg.edges_mut()[edge].intra_stride =
            dominant_stride(&samples, options.majority, options.min_samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_requires_majority() {
        assert_eq!(dominant_stride(&[8, 8, 8, 8], 0.75, 4), Some(8));
        assert_eq!(dominant_stride(&[8, 8, 8, 4], 0.75, 4), Some(8));
        assert_eq!(dominant_stride(&[8, 8, 4, 4], 0.75, 4), None);
        assert_eq!(dominant_stride(&[8, 8, 8], 0.75, 4), None, "too few");
        assert_eq!(dominant_stride(&[], 0.75, 1), None);
    }

    #[test]
    fn inter_samples_are_differences() {
        let trace = vec![(0, 100), (1, 108), (2, 116), (3, 108)];
        assert_eq!(inter_iteration_samples(&trace), vec![8, 8, -8]);
    }

    #[test]
    fn intra_pairs_by_iteration_and_position() {
        // from executes once per iteration, to twice.
        let from = vec![(0, 1000), (1, 2000)];
        let to = vec![(0, 1040), (0, 1080), (1, 2040), (1, 2080)];
        assert_eq!(intra_iteration_samples(&from, &to), vec![40, 40]);
    }

    #[test]
    fn intra_skips_missing_iterations() {
        let from = vec![(0, 1000), (2, 3000)];
        let to = vec![(1, 9999), (2, 3016)];
        assert_eq!(intra_iteration_samples(&from, &to), vec![16]);
    }

    #[test]
    fn resolve_stride_precedence_both_directions() {
        // Static-first: the proof wins over a disagreeing inspection.
        assert_eq!(resolve_stride(true, Some(80), Some(8)), Some(80));
        // ... and fills in where inspection saw nothing.
        assert_eq!(resolve_stride(true, Some(80), None), Some(80));
        assert_eq!(resolve_stride(true, None, Some(8)), Some(8));
        // Legacy modes: the dynamic stride wins and the proof is
        // record-only, even when both sides disagree.
        assert_eq!(resolve_stride(false, Some(80), Some(8)), Some(8));
        assert_eq!(resolve_stride(false, Some(80), None), None);
        assert_eq!(resolve_stride(false, None, Some(8)), Some(8));
    }

    #[test]
    fn wu_weak_patterns_are_rejected() {
        // A phased multi-stride sequence (Wu et al.'s "phased
        // multiple-stride") is rejected by the single-stride detector, as
        // the paper's design intends ("we focus on discovering single
        // stride patterns", §5).
        let samples = vec![8, 8, 8, 32, 32, 32, 8, 8, 32, 32];
        assert_eq!(dominant_stride(&samples, 0.75, 4), None);
    }
}
