//! The full optimization pass: loops → LDG → object inspection → stride
//! annotation → prefetch code generation (paper §3).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use spf_heap::{HeapRead, Value};
use spf_ir::cfg::Cfg;
use spf_ir::defuse::UseDef;
use spf_ir::dom::DomTree;
use spf_ir::loops::LoopForest;
use spf_ir::{Function, InstrRef, Program};
use spf_memsim::ProcessorConfig;
use spf_trace::{NoopSink, SuppressReason, TraceEvent, TraceSink};

use crate::codegen::{apply_insertions, PrefetchCodegen};
use crate::inspect::{InspectionResult, Inspector};
use crate::ldg::{Ldg, LdgNodeId};
use crate::options::{PrefetchMode, PrefetchOptions};
use crate::report::{LoopReport, MethodReport, StrideCrossCheck};
use crate::stride::{annotate_ldg, resolve_stride};

/// Deterministic compile-time cost charged per instruction the object
/// inspector interprets. Like the adaptive recompile constants in
/// `spf-vm`, this is a *model* constant (host-independent), so the
/// inspection-cost counters are bit-identical across hosts.
pub const INSPECT_CYCLES_PER_STEP: u64 = 4;

/// Deterministic compile-time cost charged per address sample the
/// inspector records for a candidate load.
pub const INSPECT_CYCLES_PER_SAMPLE: u64 = 2;

/// Result of optimizing one method.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The transformed function (identical to the input when nothing was
    /// profitable).
    pub func: Function,
    /// What the pass found and generated.
    pub report: MethodReport,
}

/// The stride-prefetching optimizer. One instance per configuration; it is
/// stateless across methods and can be reused.
#[derive(Clone, Debug, Default)]
pub struct StridePrefetcher {
    options: PrefetchOptions,
}

impl StridePrefetcher {
    /// Creates an optimizer with the given options.
    pub fn new(options: PrefetchOptions) -> Self {
        StridePrefetcher { options }
    }

    /// The configuration in use.
    pub fn options(&self) -> &PrefetchOptions {
        &self.options
    }

    /// Optimizes `func` of `program`, using the *actual argument values*
    /// `args` of the pending invocation and read access to the live heap
    /// and statics — the information that only a dynamic compiler has
    /// (paper §1).
    ///
    /// The traversal follows §3: loops are processed in postorder within
    /// each loop tree, trees in program order. Loads inside nested loops
    /// whose measured trip count is small are folded into the parent loop's
    /// pass; anchors already handled by an inner pass are skipped.
    pub fn optimize(
        &self,
        program: &Program,
        func: &Function,
        heap: &dyn HeapRead,
        statics: &[Value],
        args: &[Value],
        proc: &ProcessorConfig,
    ) -> OptimizeOutcome {
        self.optimize_traced(program, func, heap, statics, args, proc, &mut NoopSink)
    }

    /// [`Self::optimize`], emitting one compile-time trace event per LDG
    /// built, loop inspected, candidate suppressed, and prefetch planned.
    /// With a `NoopSink` the instrumentation compiles out and this *is*
    /// `optimize`.
    #[allow(clippy::too_many_arguments)]
    pub fn optimize_traced<S: TraceSink>(
        &self,
        program: &Program,
        func: &Function,
        heap: &dyn HeapRead,
        statics: &[Value],
        args: &[Value],
        proc: &ProcessorConfig,
        sink: &mut S,
    ) -> OptimizeOutcome {
        self.run(program, func, heap, statics, args, proc, None, sink)
    }

    /// Per-loop repatch (DESIGN §15): re-runs the pipeline for *only* the
    /// loops whose header block index is in `due_headers`, on a body that
    /// may already carry live prefetch sites belonging to other loops.
    ///
    /// The due loops' own blocks must have been stripped of their sites
    /// first (the tier-1 patch does this); anchors elsewhere that already
    /// have an adjacent `Prefetch`/`SpecLoad` are pre-seeded into the
    /// codegen's `already` set, so surviving loops come through untouched
    /// and only the due loops' sites are re-planned from the current heap.
    #[allow(clippy::too_many_arguments)]
    pub fn reoptimize_loops<S: TraceSink>(
        &self,
        program: &Program,
        func: &Function,
        heap: &dyn HeapRead,
        statics: &[Value],
        args: &[Value],
        proc: &ProcessorConfig,
        due_headers: &HashSet<u32>,
        sink: &mut S,
    ) -> OptimizeOutcome {
        self.run(
            program,
            func,
            heap,
            statics,
            args,
            proc,
            Some(due_headers),
            sink,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run<S: TraceSink>(
        &self,
        program: &Program,
        func: &Function,
        heap: &dyn HeapRead,
        statics: &[Value],
        args: &[Value],
        proc: &ProcessorConfig,
        filter: Option<&HashSet<u32>>,
        sink: &mut S,
    ) -> OptimizeOutcome {
        let start = Instant::now();
        let mut report = MethodReport {
            method: func.name().to_string(),
            ..MethodReport::default()
        };
        if self.options.mode == PrefetchMode::Off {
            report.pass_nanos = start.elapsed().as_nanos();
            return OptimizeOutcome {
                func: func.clone(),
                report,
            };
        }
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        if forest.is_empty() {
            report.pass_nanos = start.elapsed().as_nanos();
            return OptimizeOutcome {
                func: func.clone(),
                report,
            };
        }
        let ud = UseDef::compute(func, &cfg);
        let codegen = PrefetchCodegen::new(heap.layout(), proc, &self.options);

        let mut work = func.clone();
        let mut merged: HashMap<InstrRef, Vec<spf_ir::Instr>> = HashMap::new();
        let mut already: HashSet<InstrRef> = HashSet::new();
        if filter.is_some() {
            // Repatch runs on an already-optimized body: every anchor that
            // still has a site spliced right after it belongs to a loop
            // that survived, and must not be re-planned.
            for b in func.block_ids() {
                let instrs = &func.block(b).instrs;
                for i in 0..instrs.len() {
                    let is_site = |x: &spf_ir::Instr| {
                        matches!(
                            x,
                            spf_ir::Instr::Prefetch { .. } | spf_ir::Instr::SpecLoad { .. }
                        )
                    };
                    if !is_site(&instrs[i]) && instrs.get(i + 1).is_some_and(is_site) {
                        already.insert(InstrRef::new(b, i));
                    }
                }
            }
        }

        for target in forest.postorder() {
            if let Some(due) = filter {
                if !due.contains(&(forest.info(target).header.index() as u32)) {
                    continue;
                }
            }
            let mut ldg = Ldg::build(func, &ud, &forest, target);
            if ldg.is_empty() {
                continue;
            }
            let header = forest.info(target).header;
            if S::ENABLED {
                sink.emit(TraceEvent::LdgBuilt {
                    loop_header: header.index() as u32,
                    nodes: ldg.len() as u32,
                    edges: ldg.edges().len() as u32,
                });
            }
            // Static affine stride proofs. In the legacy modes these are
            // record-only (the cross-check below must not influence
            // codegen, so the pre-existing simulated numbers stay
            // bit-identical); in static-first mode they drive emission.
            let static_strides =
                spf_analysis::scev::loop_static_strides(func, &cfg, &dom, &forest, &ud, target);
            let static_first = self.options.mode.static_first();
            let mut static_sites = 0usize;
            if static_first {
                let ids: Vec<LdgNodeId> = ldg.node_ids().collect();
                for &id in &ids {
                    let site = ldg.node(id).site;
                    ldg.node_mut(id).static_stride = static_strides.get(&site).copied();
                }
                // A proved site skips inspection unless one of its LDG
                // successors is statically opaque: dereference-based and
                // intra-iteration pairing need the anchor's samples, so
                // such anchors stay recorded (and are tagged Hybrid).
                for &id in &ids {
                    if ldg.node(id).static_stride.is_none() {
                        continue;
                    }
                    let opaque_succ = ldg
                        .successors(id)
                        .any(|e| ldg.node(e.to).static_stride.is_none());
                    if !opaque_succ {
                        ldg.node_mut(id).recorded = false;
                        static_sites += 1;
                    }
                }
            }
            let record: HashSet<InstrRef> = ldg
                .node_ids()
                .filter(|&id| ldg.node(id).recorded)
                .map(|id| ldg.node(id).site)
                .collect();
            // When every candidate is proved, the inspector never runs —
            // the whole point of static-first: zero inspection budget.
            let inspection = if record.is_empty() {
                InspectionResult::default()
            } else {
                let inspector =
                    Inspector::new(program, func, heap, statics, &forest, &self.options);
                inspector.run(args, target, &record)
            };
            annotate_ldg(&mut ldg, &inspection.traces, &self.options);
            let mut stride_check = StrideCrossCheck::default();
            for id in ldg.node_ids() {
                let node = ldg.node(id);
                stride_check.record(static_strides.get(&node.site).copied(), node.inter_stride);
            }
            if static_first {
                // Precedence: the proof wins wherever both sides produced
                // a stride, and fills in for the uninspected proved sites.
                for id in ldg.node_ids().collect::<Vec<_>>() {
                    let node = ldg.node_mut(id);
                    node.inter_stride = resolve_stride(true, node.static_stride, node.inter_stride);
                }
            }
            // Deterministic inspection cost: charged as a counter (never
            // into the simulated clock — adaptive recompiles run inside
            // measured windows, so clock-charging would perturb the
            // pre-existing cells).
            let inspection_samples: u64 = inspection.traces.values().map(|t| t.len() as u64).sum();
            let inspection_cycles = INSPECT_CYCLES_PER_STEP * inspection.steps
                + INSPECT_CYCLES_PER_SAMPLE * inspection_samples;
            if S::ENABLED {
                sink.emit(TraceEvent::Inspected {
                    loop_header: header.index() as u32,
                    iterations: inspection.iterations,
                    steps: inspection.steps,
                    inter_patterns: ldg
                        .node_ids()
                        .filter(|&id| ldg.node(id).inter_stride.is_some())
                        .count() as u32,
                    intra_patterns: ldg
                        .edges()
                        .iter()
                        .filter(|e| e.intra_stride.is_some())
                        .count() as u32,
                });
            }

            // Fold-in rule (§3): loads in nested loops participate only if
            // the nested loop's measured trip count is small.
            let mut exclude: HashSet<LdgNodeId> = HashSet::new();
            for id in ldg.node_ids() {
                if let Some(inner) = ldg.node(id).innermost {
                    if inner != target {
                        let nested_header = forest.info(inner).header;
                        if inspection.avg_nested_trips(nested_header)
                            > self.options.small_trip_threshold
                        {
                            exclude.insert(id);
                            if S::ENABLED {
                                let site = ldg.node(id).site;
                                sink.emit(TraceEvent::Suppressed {
                                    block: site.block.index() as u32,
                                    index: site.index,
                                    reason: SuppressReason::NestedTripCount,
                                });
                            }
                        }
                    }
                }
            }

            let (insertions, prefetches) =
                codegen.plan(&mut work, &ldg, &exclude, &mut already, sink);
            for (site, instrs) in insertions {
                merged.entry(site).or_default().extend(instrs);
            }
            // One provenance record per distinct prefetch anchor, for the
            // provenance lint (spf-lint --provenance, and the JIT's
            // debug_assertions check). Anchor sites reference the
            // pre-insertion body, so the record carries the address
            // registers directly.
            let mut site_provenance = Vec::new();
            let mut seen_anchors: HashSet<InstrRef> = HashSet::new();
            for g in &prefetches {
                if !seen_anchors.insert(g.anchor) {
                    continue;
                }
                let node = ldg.node(ldg.node_at(g.anchor).expect("anchor is an LDG node"));
                let mut addr_regs = Vec::new();
                func.instr(node.site).uses(&mut addr_regs);
                site_provenance.push(spf_analysis::SiteProvenance {
                    site: node.site,
                    provenance: g.provenance,
                    static_stride: node.static_stride,
                    installed_stride: node.inter_stride,
                    inspected: node.recorded,
                    addr_regs,
                });
            }
            report.loops.push(LoopReport {
                header: forest.info(target).header,
                depth: forest.depth(target),
                ldg_nodes: ldg.len(),
                ldg_edges: ldg.edges().len(),
                ldg_text: ldg.render(program, func),
                inspected_iterations: inspection.iterations,
                inspected_steps: inspection.steps,
                inter_patterns: ldg
                    .node_ids()
                    .filter(|&id| ldg.node(id).inter_stride.is_some())
                    .count(),
                intra_patterns: ldg
                    .edges()
                    .iter()
                    .filter(|e| e.intra_stride.is_some())
                    .count(),
                prefetches,
                stride_check,
                inspection_cycles,
                static_sites,
                site_provenance,
            });
        }

        apply_insertions(&mut work, &merged);
        #[cfg(debug_assertions)]
        if let Err(e) = spf_ir::verify::verify(program, &work) {
            panic!("prefetch insertion produced invalid IR: {e}");
        }
        #[cfg(debug_assertions)]
        {
            let pcfg = spf_analysis::ProvenanceConfig {
                static_first: self.options.mode.static_first(),
            };
            let records: Vec<_> = report.provenance_records().cloned().collect();
            let findings = spf_analysis::provenance::check(&work, &pcfg, &records);
            assert!(findings.is_empty(), "provenance lint failed: {findings:?}");
        }
        report.total_prefetches = report.count_prefetches();
        report.pass_nanos = start.elapsed().as_nanos();
        OptimizeOutcome { func: work, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_heap::{Heap, Layout, ARRAY_DATA_OFFSET};
    use spf_ir::{CmpOp, ElemTy, Instr, ProgramBuilder, Ty};

    /// arr[i] are Node refs allocated back to back; each Node has a `data`
    /// array co-allocated right after it. The loop chases
    /// arr[i] -> node.data -> data[0].
    fn fixture(permute: bool) -> (Program, spf_ir::MethodId, Heap, spf_heap::Addr) {
        let mut pb = ProgramBuilder::new();
        let (ncls, nf) = pb.add_class(
            "Node",
            &[
                ("data", ElemTy::Ref),
                ("pad0", ElemTy::I64),
                ("pad1", ElemTy::I64),
                ("pad2", ElemTy::I64),
                ("pad3", ElemTy::I64),
                ("pad4", ElemTy::I64),
                ("pad5", ElemTy::I64),
                ("pad6", ElemTy::I64),
                ("pad7", ElemTy::I64),
                ("pad8", ElemTy::I64),
                ("pad9", ElemTy::I64),
                ("pad10", ElemTy::I64),
                ("pad11", ElemTy::I64),
                ("pad12", ElemTy::I64),
                ("pad13", ElemTy::I64),
                ("pad14", ElemTy::I64),
                ("pad15", ElemTy::I64),
                ("pad16", ElemTy::I64),
                ("pad17", ElemTy::I64),
                ("pad18", ElemTy::I64),
            ],
        );
        let mut b = pb.function("chase", &[Ty::Ref], Some(Ty::I32));
        let arr = b.param(0);
        let sum = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(sum, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let node = b.aload(arr, i, ElemTy::Ref);
                let data = b.getfield(node, nf[0]);
                let zero = b.const_i32(0);
                let v = b.aload(data, zero, ElemTy::I32);
                let s = b.add(sum, v);
                b.move_(sum, s);
            },
        );
        b.ret(Some(sum));
        let m = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let mut heap = Heap::new(layout, 8 << 20);
        let n = 256u64;
        let arr_addr = heap.alloc_array(ElemTy::Ref, n).unwrap();
        let mut nodes = Vec::new();
        for _ in 0..n {
            let node = heap.alloc_object(ncls).unwrap();
            let data = heap.alloc_array(ElemTy::I32, 40).unwrap();
            heap.write(
                node + heap.layout_tables().field_offset(nf[0]),
                ElemTy::Ref,
                Value::Ref(data),
            )
            .unwrap();
            nodes.push(node);
        }
        if permute {
            // Deterministic shuffle so arr[i] has no usable stride.
            let len = nodes.len();
            for i in 0..len {
                nodes.swap(i, (i * 7 + 3) % len);
            }
        }
        for (i, &node) in nodes.iter().enumerate() {
            heap.write(
                arr_addr + ARRAY_DATA_OFFSET + 8 * i as u64,
                ElemTy::Ref,
                Value::Ref(node),
            )
            .unwrap();
        }
        (program, m, heap, arr_addr)
    }

    fn count_kinds(f: &Function) -> (usize, usize) {
        let mut prefetches = 0;
        let mut specs = 0;
        for s in f.instr_sites() {
            match f.instr(s) {
                Instr::Prefetch { .. } => prefetches += 1,
                Instr::SpecLoad { .. } => specs += 1,
                _ => {}
            }
        }
        (prefetches, specs)
    }

    #[test]
    fn off_mode_changes_nothing() {
        let (p, m, heap, arr) = fixture(false);
        let opt = StridePrefetcher::new(PrefetchOptions::off());
        let out = opt.optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
        );
        assert_eq!(&out.func, p.method(m).func());
        assert_eq!(out.report.total_prefetches, 0);
    }

    #[test]
    fn sequential_nodes_get_inter_prefetches() {
        let (p, m, heap, arr) = fixture(false);
        let opt = StridePrefetcher::new(PrefetchOptions::inter_intra());
        let out = opt.optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::athlon_mp(),
        );
        let (prefetches, _) = count_kinds(&out.func);
        assert!(prefetches > 0, "{}", out.report.render());
        // node getfield has inter stride (nodes sequential) -> the loop has
        // at least one inter pattern.
        assert!(
            out.report.loops[0].inter_patterns >= 1,
            "{}",
            out.report.render()
        );
    }

    #[test]
    fn permuted_nodes_need_dereference_prefetching() {
        let (p, m, heap, arr) = fixture(true);
        let opt = StridePrefetcher::new(PrefetchOptions::inter_intra());
        let out = opt.optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
        );
        let (prefetches, specs) = count_kinds(&out.func);
        assert!(
            specs >= 1,
            "expected a speculative load anchor:\n{}",
            out.report.render()
        );
        assert!(prefetches >= 1, "{}", out.report.render());
    }

    #[test]
    fn inter_mode_emits_no_spec_loads() {
        let (p, m, heap, arr) = fixture(true);
        let opt = StridePrefetcher::new(PrefetchOptions::inter());
        let out = opt.optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
        );
        let (_, specs) = count_kinds(&out.func);
        assert_eq!(specs, 0, "INTER emulates Wu: no dereference prefetching");
    }

    #[test]
    fn report_counts_match_function_contents() {
        let (p, m, heap, arr) = fixture(true);
        let opt = StridePrefetcher::new(PrefetchOptions::inter_intra());
        let out = opt.optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
        );
        let (prefetches, specs) = count_kinds(&out.func);
        assert_eq!(out.report.total_prefetches, prefetches + specs);
        assert!(out.report.pass_nanos > 0);
    }

    #[test]
    fn traced_optimize_mirrors_report() {
        use spf_trace::{RingSink, TraceEvent};
        let (p, m, heap, arr) = fixture(true);
        let opt = StridePrefetcher::new(PrefetchOptions::inter_intra());
        let mut sink = RingSink::default();
        let out = opt.optimize_traced(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
            &mut sink,
        );
        // The untraced pass produces the identical function and report.
        let plain = opt.optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
        );
        assert_eq!(out.func, plain.func);

        let events = sink.events();
        let planned: Vec<(u32, u32)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Planned { block, index, .. } => Some((*block, *index)),
                _ => None,
            })
            .collect();
        let reported: Vec<(u32, u32)> = out
            .report
            .loops
            .iter()
            .flat_map(|l| &l.prefetches)
            .map(|g| (g.anchor.block.index() as u32, g.anchor.index))
            .collect();
        assert_eq!(planned, reported, "one Planned event per report entry");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::LdgBuilt { .. })),
            "LDG construction traced"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::Inspected { .. })),
            "inspection traced"
        );
    }

    #[test]
    fn stride_cross_check_classifies_fixture_loads() {
        // arr[i] is an affine walk: both static analysis and inspection see
        // stride 8 (agree). node.data is a pointer dereference: only
        // inspection can say anything about it.
        let (p, m, heap, arr) = fixture(false);
        let opt = StridePrefetcher::new(PrefetchOptions::inter_intra());
        let out = opt.optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
        );
        let totals = out.report.stride_check_totals();
        assert!(totals.agree >= 1, "{}", out.report.render());
        assert!(totals.dynamic_only >= 1, "{}", out.report.render());
        assert_eq!(totals.disagree, 0, "{}", out.report.render());
        assert_eq!(totals.agreement_rate(), Some(1.0));
    }

    #[test]
    fn static_first_skips_inspection_for_proved_sites() {
        let (p, m, heap, arr) = fixture(false);
        let run = |opts: PrefetchOptions| {
            StridePrefetcher::new(opts).optimize(
                &p,
                p.method(m).func(),
                &heap,
                &[],
                &[Value::Ref(arr)],
                &ProcessorConfig::pentium4(),
            )
        };
        let sf = run(PrefetchOptions::static_first());
        let ii = run(PrefetchOptions::inter_intra());
        // arr.length (loop-invariant) and arr[i] (affine) are provable;
        // arr.length has no LDG successors, so it skips inspection.
        assert!(sf.report.static_sites() >= 1, "{}", sf.report.render());
        assert_eq!(ii.report.static_sites(), 0);
        // The skipped site's samples are budget saved: strictly fewer
        // inspection cycles than the all-dynamic pipeline.
        assert!(
            sf.report.inspection_cycles() < ii.report.inspection_cycles(),
            "sf {} !< inter+intra {}",
            sf.report.inspection_cycles(),
            ii.report.inspection_cycles()
        );
        assert!(ii.report.inspection_cycles() > 0);
        // Every legacy-mode prefetch is Dynamic.
        use spf_analysis::Provenance;
        assert!(ii
            .report
            .loops
            .iter()
            .flat_map(|l| &l.prefetches)
            .all(|g| g.provenance == Provenance::Dynamic));
        spf_ir::verify::verify(&p, &sf.func).unwrap();
    }

    #[test]
    fn proved_anchor_with_opaque_successor_is_hybrid() {
        // Permuted list-of-nodes: arr[i]'s *address* walk is affine
        // (provable, stride 8) but the loaded pointers are shuffled, so
        // node.data needs the dynamic side. The proved anchor therefore
        // stays in the record set, and both its speculative-load anchor
        // and the dereference threaded through it are tagged Hybrid.
        let (p, m, heap, arr) = fixture(true);
        let out = StridePrefetcher::new(PrefetchOptions::static_first()).optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(arr)],
            &ProcessorConfig::pentium4(),
        );
        use spf_analysis::Provenance;
        let provs: Vec<Provenance> = out
            .report
            .loops
            .iter()
            .flat_map(|l| &l.prefetches)
            .map(|g| g.provenance)
            .collect();
        assert!(provs.contains(&Provenance::Hybrid), "{provs:?}");
        spf_ir::verify::verify(&p, &out.func).unwrap();
    }

    #[test]
    fn fully_proved_loop_never_runs_the_inspector() {
        // A pure affine walk: every LDG candidate is provable, so the
        // record set is empty and object inspection is skipped outright.
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("affine", &[Ty::Ref], Some(Ty::I64));
        let arr = b.param(0);
        let sum = b.new_reg(Ty::I64);
        let z = b.const_i64(0);
        b.move_(sum, z);
        // Step 8 over i64 elements: stride 64 bytes, profitably wide.
        b.for_i32(
            0,
            8,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let v = b.aload(arr, i, ElemTy::I64);
                let s = b.add(sum, v);
                b.move_(sum, s);
            },
        );
        b.ret(Some(sum));
        let m = b.finish();
        let p = pb.finish();
        let layout = Layout::compute(&p);
        let mut heap = Heap::new(layout, 1 << 20);
        let a = heap.alloc_array(ElemTy::I64, 4096).unwrap();

        let out = StridePrefetcher::new(PrefetchOptions::static_first()).optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(a)],
            &ProcessorConfig::athlon_mp(),
        );
        let lr = &out.report.loops[0];
        assert_eq!(lr.inspected_steps, 0, "{}", out.report.render());
        assert_eq!(lr.inspection_cycles, 0);
        assert_eq!(lr.static_sites, 2, "arr.length and arr[i]");
        // The proved stride is emitted anyway, tagged Static.
        use spf_analysis::Provenance;
        assert!(
            lr.prefetches
                .iter()
                .any(|g| g.provenance == Provenance::Static
                    && g.kind == crate::report::GeneratedKind::InterStride { stride: 64 }),
            "{}",
            out.report.render()
        );
        // The legacy pipeline pays inspection for the same loop.
        let ii = StridePrefetcher::new(PrefetchOptions::inter_intra()).optimize(
            &p,
            p.method(m).func(),
            &heap,
            &[],
            &[Value::Ref(a)],
            &ProcessorConfig::athlon_mp(),
        );
        assert!(ii.report.inspection_cycles() > 0);
        spf_ir::verify::verify(&p, &out.func).unwrap();
    }

    #[test]
    fn disagreement_resolution_prefers_the_proof_only_under_static_first() {
        // Organic static/dynamic disagreement is impossible by design —
        // scev's conservative guards bail out on every channel (masking,
        // conditional defs, wrapping arithmetic) where inspection could
        // see a different stride. This test therefore doctors the LDG
        // annotations to a synthetic disagreement (proof says 128,
        // inspection says 8) and checks the precedence rule end to end
        // through resolve_stride + codegen in both directions.
        let (p, m, heap, _arr) = fixture(false);
        let func = p.method(m).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let ud = UseDef::compute(func, &cfg);
        let target = forest.postorder()[0];

        let emitted_stride = |static_first: bool| -> Vec<i64> {
            let mut ldg = Ldg::build(func, &ud, &forest, target);
            let aload = ldg
                .node_ids()
                .find(|&id| matches!(func.instr(ldg.node(id).site), Instr::ALoad { .. }))
                .unwrap();
            let node = ldg.node_mut(aload);
            node.static_stride = static_first.then_some(128);
            node.samples = 20;
            node.inter_stride = crate::stride::resolve_stride(static_first, Some(128), Some(8));
            let opts = if static_first {
                PrefetchOptions::static_first()
            } else {
                PrefetchOptions::inter_intra()
            };
            let proc = ProcessorConfig::athlon_mp();
            let codegen = PrefetchCodegen::new(heap.layout(), &proc, &opts);
            let mut work = func.clone();
            let (_, prefetches) = codegen.plan(
                &mut work,
                &ldg,
                &HashSet::new(),
                &mut HashSet::new(),
                &mut spf_trace::NoopSink,
            );
            prefetches
                .iter()
                .filter_map(|g| match g.kind {
                    crate::report::GeneratedKind::InterStride { stride }
                    | crate::report::GeneratedKind::SpeculativeLoad { stride } => Some(stride),
                    _ => None,
                })
                .collect()
        };
        // Static-first: the installed stride is the proof's 128.
        assert!(emitted_stride(true).contains(&128));
        // Legacy: the dynamic 8 wins — but stride 8 is inside the cache
        // line, so the inter prefetch is suppressed entirely (no 128
        // leaks through either).
        let legacy = emitted_stride(false);
        assert!(!legacy.contains(&128), "{legacy:?}");
    }

    #[test]
    fn optimized_function_passes_speculation_lint() {
        let (p, m, heap, arr) = fixture(true);
        for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
            for opts in [
                PrefetchOptions::inter(),
                PrefetchOptions::inter_intra(),
                PrefetchOptions::static_first(),
            ] {
                let policy = opts.guarded_policy.lint_check(proc.swpf_drops_on_tlb_miss);
                let opt = StridePrefetcher::new(opts);
                let out = opt.optimize(
                    &p,
                    p.method(m).func(),
                    &heap,
                    &[],
                    &[Value::Ref(arr)],
                    &proc,
                );
                let findings = spf_analysis::lint(&out.func, &spf_analysis::LintConfig { policy });
                assert!(findings.is_empty(), "{findings:?}");
            }
        }
    }

    #[test]
    fn optimized_function_verifies() {
        let (p, m, heap, arr) = fixture(true);
        for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
            for opts in [
                PrefetchOptions::inter(),
                PrefetchOptions::inter_intra(),
                PrefetchOptions::static_first(),
            ] {
                let opt = StridePrefetcher::new(opts);
                let out = opt.optimize(
                    &p,
                    p.method(m).func(),
                    &heap,
                    &[],
                    &[Value::Ref(arr)],
                    &proc,
                );
                spf_ir::verify::verify(&p, &out.func).unwrap();
            }
        }
    }

    use spf_heap::Value;
}
