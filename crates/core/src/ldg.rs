//! The load dependence graph (paper §3.1).
//!
//! Each node is a load instruction in the target loop that uses a reference
//! as an operand (`getfield`, `getstatic`, array loads, `arraylength`); a
//! directed edge `L1 -> L2` exists iff `L2` is *directly data dependent*
//! upon `L1`, i.e. `L2` loads through the value `L1` loaded. Only adjacent
//! pairs in this graph are checked for intra-iteration stride patterns,
//! which bounds the cost of object inspection.

use std::collections::HashMap;

use spf_ir::defuse::{DefSite, UseDef};
use spf_ir::loops::{LoopForest, LoopId};
use spf_ir::{Function, Instr, InstrRef, Program, Reg};

/// Identifies a node within one [`Ldg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LdgNodeId(u32);

impl LdgNodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LdgNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0 + 1) // 1-based, like the paper's Table 1
    }
}

/// One load instruction in the graph.
#[derive(Clone, Debug)]
pub struct LdgNode {
    /// The load's instruction site.
    pub site: InstrRef,
    /// The innermost loop containing the site (used for the small-trip-count
    /// rule when nested loops are folded into their parent).
    pub innermost: Option<LoopId>,
    /// Dominant inter-iteration stride, once annotated by stride analysis.
    pub inter_stride: Option<i64>,
    /// Number of address samples the annotation is based on.
    pub samples: usize,
    /// Statically-proved affine stride (set by the static-first pipeline
    /// before inspection; `None` in the legacy modes, where proofs are
    /// record-only).
    pub static_stride: Option<i64>,
    /// Whether the site was in the object-inspection record set. Always
    /// `true` in the legacy modes; static-first clears it for sites whose
    /// stride is proved and whose successors are all proved too.
    pub recorded: bool,
}

/// A direct data dependence between two loads.
#[derive(Clone, Debug)]
pub struct LdgEdge {
    /// The load producing the reference.
    pub from: LdgNodeId,
    /// The load consuming it as base address.
    pub to: LdgNodeId,
    /// Dominant intra-iteration stride `A(to) - A(from)`, once annotated.
    pub intra_stride: Option<i64>,
}

/// The load dependence graph of one loop.
#[derive(Clone, Debug, Default)]
pub struct Ldg {
    nodes: Vec<LdgNode>,
    edges: Vec<LdgEdge>,
    by_site: HashMap<InstrRef, LdgNodeId>,
}

impl Ldg {
    /// Builds the graph for the loop `target` of `func`.
    ///
    /// Loads inside nested loops are included (the decision whether their
    /// nested loop has a small enough trip count to exploit them is made
    /// after inspection). Edges are derived from use-def chains, following
    /// `Move` copies; a base whose reaching definition is not unique
    /// contributes no edge, keeping the analysis cheap and conservative.
    pub fn build(func: &Function, ud: &UseDef, forest: &LoopForest, target: LoopId) -> Self {
        let info = forest.info(target);
        let mut ldg = Ldg::default();
        for b in func.block_ids() {
            if !info.contains(b) {
                continue;
            }
            for (i, instr) in func.block(b).instrs.iter().enumerate() {
                if instr.is_ldg_load() {
                    let site = InstrRef::new(b, i);
                    let id = LdgNodeId(ldg.nodes.len() as u32);
                    ldg.nodes.push(LdgNode {
                        site,
                        innermost: forest.innermost(b),
                        inter_stride: None,
                        samples: 0,
                        static_stride: None,
                        recorded: true,
                    });
                    ldg.by_site.insert(site, id);
                }
            }
        }
        // Edges: trace each node's base operand back to a producing load.
        for to in 0..ldg.nodes.len() {
            let site = ldg.nodes[to].site;
            let base = match func.instr(site) {
                Instr::GetField { obj, .. } => Some(*obj),
                Instr::ALoad { arr, .. } => Some(*arr),
                Instr::AStore { .. } => None,
                Instr::ArrayLen { arr, .. } => Some(*arr),
                _ => None, // GetStatic has no register base
            };
            if let Some(reg) = base {
                if let Some(origin) = trace_origin(func, ud, &ldg.by_site, site, reg, 0) {
                    let from = ldg.by_site[&origin];
                    ldg.edges.push(LdgEdge {
                        from,
                        to: LdgNodeId(to as u32),
                        intra_stride: None,
                    });
                }
            }
        }
        ldg
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = LdgNodeId> {
        (0..self.nodes.len() as u32).map(LdgNodeId)
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics on an id from another graph.
    pub fn node(&self, id: LdgNodeId) -> &LdgNode {
        &self.nodes[id.index()]
    }

    /// Mutably borrows a node (stride analysis annotates through this).
    ///
    /// # Panics
    ///
    /// Panics on an id from another graph.
    pub fn node_mut(&mut self, id: LdgNodeId) -> &mut LdgNode {
        &mut self.nodes[id.index()]
    }

    /// All edges.
    pub fn edges(&self) -> &[LdgEdge] {
        &self.edges
    }

    /// Mutable access to the edges (for stride annotation).
    pub fn edges_mut(&mut self) -> &mut [LdgEdge] {
        &mut self.edges
    }

    /// The node for a load site, if it is in the graph.
    pub fn node_at(&self, site: InstrRef) -> Option<LdgNodeId> {
        self.by_site.get(&site).copied()
    }

    /// Ids of nodes adjacent to `id` (successors: loads data-dependent on
    /// it).
    pub fn successors(&self, id: LdgNodeId) -> impl Iterator<Item = &LdgEdge> {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// The edge `from -> to`, if present.
    pub fn edge(&self, from: LdgNodeId, to: LdgNodeId) -> Option<&LdgEdge> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }

    /// The paper-style symbolic address of a node's load (Table 1's
    /// "Memory addresses" column): `&base.field`, `&arr[idx]`,
    /// `&arr.length`, or `&statics.name`.
    pub fn symbolic_address(program: &Program, func: &Function, site: InstrRef) -> String {
        match func.instr(site) {
            Instr::GetField { obj, field, .. } => {
                format!("&{obj}.{}", program.field(*field).name)
            }
            Instr::ALoad { arr, idx, .. } => format!("&{arr}[{idx}]"),
            Instr::ArrayLen { arr, .. } => format!("&{arr}.length"),
            Instr::GetStatic { sid, .. } => {
                format!("&statics.{}", program.static_def(*sid).name)
            }
            other => format!("{other:?}"),
        }
    }

    /// Renders the graph as a Graphviz digraph (the paper's Figure 5 as an
    /// artifact). Nodes carry their instruction text; edges are annotated
    /// with discovered intra-iteration strides.
    pub fn to_dot(&self, program: &Program, func: &Function) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph ldg {\n  node [shape=box, fontname=\"monospace\"];\n");
        for id in self.node_ids() {
            let n = self.node(id);
            let text = spf_ir::display::instr_to_string(program, func, func.instr(n.site))
                .replace('\"', "'");
            let stride = match n.inter_stride {
                Some(d) => format!("\\nd={d}"),
                None => String::new(),
            };
            let _ = writeln!(s, "  {} [label=\"{id}: {text}{stride}\"];", id.index());
        }
        for e in &self.edges {
            let label = match e.intra_stride {
                Some(v) => format!(" [label=\"S={v}\"]"),
                None => String::new(),
            };
            let _ = writeln!(s, "  {} -> {}{label};", e.from.index(), e.to.index());
        }
        s.push_str("}\n");
        s
    }

    /// Renders the graph like the paper's Figure 5: one line per node with
    /// its instruction, then the edge list.
    pub fn render(&self, program: &Program, func: &Function) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for id in self.node_ids() {
            let n = self.node(id);
            let _ = writeln!(
                s,
                "{id:>4}  {:<22} {}",
                Self::symbolic_address(program, func, n.site),
                spf_ir::display::instr_to_string(program, func, func.instr(n.site))
            );
        }
        for e in &self.edges {
            let _ = writeln!(s, "      {} -> {}", e.from, e.to);
        }
        s
    }
}

/// Follows use-def chains (through `Move`s) from the use of `reg` at `site`
/// to a load site in `nodes`, if the chain is unique.
fn trace_origin(
    func: &Function,
    ud: &UseDef,
    nodes: &HashMap<InstrRef, LdgNodeId>,
    site: InstrRef,
    reg: Reg,
    depth: usize,
) -> Option<InstrRef> {
    if depth > 32 {
        return None;
    }
    match ud.unique_reaching_def(func, site, reg)? {
        DefSite::Param(_) => None,
        DefSite::Instr(def_site) => match func.instr(def_site) {
            Instr::Move { src, .. } => trace_origin(func, ud, nodes, def_site, *src, depth + 1),
            instr if instr.is_ldg_load() => nodes.contains_key(&def_site).then_some(def_site),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::cfg::Cfg;
    use spf_ir::dom::DomTree;
    use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

    /// Builds a mini `findInMemory`-style method:
    /// for i in 0..tv.ptr { tmp = tv.v[i]; s += tmp.size }
    fn build_chase() -> (Program, spf_ir::MethodId) {
        let mut pb = ProgramBuilder::new();
        let (_tok, tok_fields) =
            pb.add_class("Token", &[("size", ElemTy::I32), ("facts", ElemTy::Ref)]);
        let (_tv, tv_fields) =
            pb.add_class("TokenVector", &[("v", ElemTy::Ref), ("ptr", ElemTy::I32)]);
        let mut b = pb.function("find", &[Ty::Ref], Some(Ty::I32));
        let tv = b.param(0);
        let sum = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(sum, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.getfield(tv, tv_fields[1]), // L1: tv.ptr
            |b, i| {
                let v = b.getfield(tv, tv_fields[0]); // L2: tv.v
                let tmp = b.aload(v, i, ElemTy::Ref); // L4: tv.v[i]
                let sz = b.getfield(tmp, tok_fields[0]); // L5: tmp.size
                let s2 = b.add(sum, sz);
                b.move_(sum, s2);
            },
        );
        b.ret(Some(sum));
        let m = b.finish();
        (pb.finish(), m)
    }

    fn build_ldg(p: &Program, m: spf_ir::MethodId) -> (Ldg, LoopId) {
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        let ud = UseDef::compute(f, &cfg);
        let target = forest.roots()[0];
        (Ldg::build(f, &ud, &forest, target), target)
    }

    #[test]
    fn nodes_are_the_loop_loads() {
        let (p, m) = build_chase();
        let (ldg, _) = build_ldg(&p, m);
        // tv.ptr (header), tv.v, tv.v[i], tmp.size
        assert_eq!(ldg.len(), 4);
    }

    #[test]
    fn edges_follow_reference_chasing() {
        let (p, m) = build_chase();
        let (ldg, _) = build_ldg(&p, m);
        let f = p.method(m).func();
        // Find each node by instruction form.
        let mut aload = None;
        let mut getsize = None;
        let mut getv = None;
        for id in ldg.node_ids() {
            match f.instr(ldg.node(id).site) {
                Instr::ALoad { .. } => aload = Some(id),
                Instr::GetField { field, .. } if p.field(*field).name == "size" => {
                    getsize = Some(id)
                }
                Instr::GetField { field, .. } if p.field(*field).name == "v" => getv = Some(id),
                _ => {}
            }
        }
        let (aload, getsize, getv) = (aload.unwrap(), getsize.unwrap(), getv.unwrap());
        // tv.v -> tv.v[i]  and  tv.v[i] -> tmp.size
        assert!(ldg.edge(getv, aload).is_some(), "{}", ldg.render(&p, f));
        assert!(ldg.edge(aload, getsize).is_some(), "{}", ldg.render(&p, f));
        // No edge into tv.v: its base is a parameter.
        assert!(ldg.edges().iter().all(|e| e.to != getv));
    }

    #[test]
    fn render_mentions_nodes_and_edges() {
        let (p, m) = build_chase();
        let (ldg, _) = build_ldg(&p, m);
        let text = ldg.render(&p, p.method(m).func());
        assert!(text.contains("L1"), "{text}");
        assert!(text.contains("->"), "{text}");
    }

    #[test]
    fn symbolic_addresses_match_table1_style() {
        let (p, m) = build_chase();
        let (ldg, _) = build_ldg(&p, m);
        let f = p.method(m).func();
        let rendered: Vec<String> = ldg
            .node_ids()
            .map(|id| Ldg::symbolic_address(&p, f, ldg.node(id).site))
            .collect();
        // Table 1 style: &tv.ptr, &tv.v, &tv.v[i], &tmp.size (register names
        // stand in for source names).
        assert!(rendered.iter().any(|a| a.ends_with(".ptr")), "{rendered:?}");
        assert!(
            rendered.iter().any(|a| a.ends_with(".size")),
            "{rendered:?}"
        );
        assert!(rendered.iter().any(|a| a.contains('[')), "{rendered:?}");
    }

    #[test]
    fn getstatic_is_a_leafless_node() {
        let mut pb = ProgramBuilder::new();
        let sid = pb.add_static("g", ElemTy::Ref);
        let mut b = pb.function("s", &[Ty::I32], None);
        let n = b.param(0);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let g = b.getstatic(sid);
                let _len = b.arraylen(g);
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let (ldg, _) = build_ldg(&p, m);
        assert_eq!(ldg.len(), 2);
        // getstatic -> arraylength edge exists.
        assert_eq!(ldg.edges().len(), 1);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use spf_ir::cfg::Cfg;
    use spf_ir::defuse::UseDef;
    use spf_ir::dom::DomTree;
    use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

    #[test]
    fn dot_renders_nodes_edges_and_strides() {
        let mut pb = ProgramBuilder::new();
        let (_c, fs) = pb.add_class("N", &[("next", ElemTy::Ref)]);
        let mut b = pb.function("walk", &[Ty::Ref, Ty::I32], None);
        let arr = b.param(0);
        let n = b.param(1);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let node = b.aload(arr, i, ElemTy::Ref);
                let _next = b.getfield(node, fs[0]);
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = spf_ir::loops::LoopForest::compute(f, &cfg, &dom);
        let ud = UseDef::compute(f, &cfg);
        let mut ldg = Ldg::build(f, &ud, &forest, forest.roots()[0]);
        // Annotate something so the labels show strides.
        let first = ldg.node_ids().next().unwrap();
        ldg.node_mut(first).inter_stride = Some(8);
        if !ldg.edges().is_empty() {
            ldg.edges_mut()[0].intra_stride = Some(48);
        }
        let dot = ldg.to_dot(&p, f);
        assert!(dot.starts_with("digraph ldg"), "{dot}");
        assert!(dot.contains("d=8"), "{dot}");
        assert!(dot.contains("S=48"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
    }
}
