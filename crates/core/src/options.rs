//! Configuration of the prefetching algorithm.

use crate::codegen::GuardedPolicy;

/// Which stride patterns the optimizer exploits — the two configurations
/// evaluated in the paper's §4 plus "off" (the baseline).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PrefetchMode {
    /// No prefetching (the paper's BASELINE).
    Off,
    /// Inter-iteration stride prefetching only — the paper's limited
    /// emulation of Wu et al.'s stride prefetching (INTER).
    Inter,
    /// Inter- and intra-iteration stride prefetching (INTER+INTRA).
    #[default]
    InterIntra,
    /// INTER+INTRA code generation plus adaptive reprofiling: compiled
    /// prefetch sites carry runtime guards (GC epoch stamp and
    /// useless-prefetch counters); stale methods are deoptimized,
    /// re-inspected, and recompiled with fresh strides (ADAPTIVE).
    Adaptive,
    /// Static-first compilation: loads whose stride the SCEV-lite affine
    /// analysis *proves* are prefetched directly from the proof and
    /// excluded from object inspection; only statically-opaque loads go
    /// through the dynamic inspector. Carries the same adaptive guards as
    /// ADAPTIVE, so deoptimized methods recompile — and a recompile
    /// re-proves static sites instead of re-inspecting them
    /// (STATIC-FIRST).
    StaticFirst,
}

impl PrefetchMode {
    /// Whether the code generator exploits intra-iteration (dereference
    /// based) patterns in this mode. Adaptive generates the same code as
    /// INTER+INTRA; it differs only in when methods are (re)compiled.
    /// StaticFirst changes where strides come from, not which pattern
    /// classes are exploited.
    pub fn intra_patterns(self) -> bool {
        matches!(
            self,
            PrefetchMode::InterIntra | PrefetchMode::Adaptive | PrefetchMode::StaticFirst
        )
    }

    /// Whether compiled methods carry adaptive-reprofiling guards (GC
    /// epoch stamps and useless-prefetch counters) that can deoptimize
    /// and recompile the method.
    pub fn adaptive_guards(self) -> bool {
        matches!(self, PrefetchMode::Adaptive | PrefetchMode::StaticFirst)
    }

    /// Whether statically-proved strides drive emission and skip the
    /// dynamic inspector for the proved sites.
    pub fn static_first(self) -> bool {
        matches!(self, PrefetchMode::StaticFirst)
    }
}

impl std::fmt::Display for PrefetchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchMode::Off => f.write_str("BASELINE"),
            PrefetchMode::Inter => f.write_str("INTER"),
            PrefetchMode::InterIntra => f.write_str("INTER+INTRA"),
            PrefetchMode::Adaptive => f.write_str("ADAPTIVE"),
            PrefetchMode::StaticFirst => f.write_str("STATIC-FIRST"),
        }
    }
}

/// Tuning knobs of the algorithm; defaults are the paper's settings.
#[derive(Clone, PartialEq, Debug)]
pub struct PrefetchOptions {
    /// Pattern classes to exploit.
    pub mode: PrefetchMode,
    /// Iterations of the target loop to interpret ("We investigated the
    /// first 20 iterations of a given loop", §4).
    pub inspect_iterations: u32,
    /// Fraction of identical strides required to accept a pattern ("it
    /// matches 75% of the all collected strides", §4).
    pub majority: f64,
    /// Minimum number of stride samples before a pattern is considered.
    pub min_samples: usize,
    /// Scheduling distance in iterations ("We fixed the scheduling distance
    /// as one iteration", §4).
    pub distance: u32,
    /// Hard budget on interpreted instructions per inspection, keeping the
    /// profile "ultra-lightweight".
    pub max_inspect_steps: u64,
    /// A nested loop whose average trip count (per target-loop iteration)
    /// is at most this is treated as part of the parent loop (§3).
    pub small_trip_threshold: f64,
    /// How prefetches are mapped to hardware instructions (§3.3).
    pub guarded_policy: GuardedPolicy,
    /// Inter-procedural object inspection: step into directly called
    /// methods instead of skipping them (§3.2 discusses this as a
    /// trade-off: "it would increase the compilation time, requiring the
    /// trade-off to be carefully assessed"). Off by default, as in the
    /// paper.
    pub inspect_calls: bool,
    /// Recursion-depth cap when `inspect_calls` is enabled.
    pub max_call_depth: u32,
    /// Whether the profitability analysis runs (ablation knob; the paper
    /// always enables it).
    pub profitability: bool,
}

impl Default for PrefetchOptions {
    fn default() -> Self {
        PrefetchOptions {
            mode: PrefetchMode::InterIntra,
            inspect_iterations: 20,
            majority: 0.75,
            min_samples: 4,
            distance: 1,
            max_inspect_steps: 50_000,
            small_trip_threshold: 16.0,
            guarded_policy: GuardedPolicy::Auto,
            inspect_calls: false,
            max_call_depth: 4,
            profitability: true,
        }
    }
}

impl PrefetchOptions {
    /// The paper's INTER configuration.
    pub fn inter() -> Self {
        PrefetchOptions {
            mode: PrefetchMode::Inter,
            ..Self::default()
        }
    }

    /// The paper's INTER+INTRA configuration.
    pub fn inter_intra() -> Self {
        Self::default()
    }

    /// The baseline: prefetching disabled.
    pub fn off() -> Self {
        PrefetchOptions {
            mode: PrefetchMode::Off,
            ..Self::default()
        }
    }

    /// INTER+INTRA plus adaptive reprofiling guards (GC-staleness
    /// detection, deopt, and re-inspection).
    pub fn adaptive() -> Self {
        PrefetchOptions {
            mode: PrefetchMode::Adaptive,
            ..Self::default()
        }
    }

    /// Static-first compilation: SCEV stride proofs drive emission and
    /// skip the inspector for proved sites; opaque loads still go through
    /// object inspection, and adaptive guards cover recompilation.
    pub fn static_first() -> Self {
        PrefetchOptions {
            mode: PrefetchMode::StaticFirst,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = PrefetchOptions::default();
        assert_eq!(o.inspect_iterations, 20);
        assert!((o.majority - 0.75).abs() < 1e-9);
        assert_eq!(o.distance, 1);
        assert_eq!(o.mode, PrefetchMode::InterIntra);
    }

    #[test]
    fn mode_display() {
        assert_eq!(PrefetchMode::Off.to_string(), "BASELINE");
        assert_eq!(PrefetchMode::Inter.to_string(), "INTER");
        assert_eq!(PrefetchMode::InterIntra.to_string(), "INTER+INTRA");
        assert_eq!(PrefetchMode::Adaptive.to_string(), "ADAPTIVE");
        assert_eq!(PrefetchMode::StaticFirst.to_string(), "STATIC-FIRST");
    }

    #[test]
    fn static_first_generates_like_inter_intra() {
        // StaticFirst changes where strides come from (proofs before
        // inspection), not which pattern classes are exploited.
        let s = PrefetchOptions::static_first();
        assert_eq!(s.mode, PrefetchMode::StaticFirst);
        assert!(s.mode.intra_patterns());
        assert!(s.mode.adaptive_guards());
        assert!(s.mode.static_first());
        assert!(!PrefetchMode::Adaptive.static_first());
        assert!(!PrefetchMode::InterIntra.adaptive_guards());
    }

    #[test]
    fn adaptive_generates_like_inter_intra() {
        // Adaptive changes *when* methods are (re)compiled, not what the
        // code generator emits; everything else matches the default.
        let a = PrefetchOptions::adaptive();
        assert_eq!(a.mode, PrefetchMode::Adaptive);
        let d = PrefetchOptions::default();
        assert_eq!(a.inspect_iterations, d.inspect_iterations);
        assert_eq!(a.guarded_policy, d.guarded_policy);
    }
}
