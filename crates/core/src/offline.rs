//! Off-line stride profiling (Wu et al., CC'02/PLDI'02) as an ablation of
//! the discovery mechanism.
//!
//! The paper's INTER configuration emulates Wu's stride prefetching using
//! object inspection for discovery. This module provides the *other*
//! discovery path: an instrumented run records the raw address trace of
//! candidate loads (no iteration boundaries — off-line profiling does not
//! have them, which is precisely why it cannot find intra-iteration
//! patterns), and the same code generator consumes the annotations.

use std::collections::{HashMap, HashSet};

use spf_heap::{Addr, Layout};
use spf_ir::cfg::Cfg;
use spf_ir::defuse::UseDef;
use spf_ir::dom::DomTree;
use spf_ir::loops::LoopForest;
use spf_ir::{Function, InstrRef, Program};
use spf_memsim::ProcessorConfig;

use crate::codegen::{apply_insertions, PrefetchCodegen};
use crate::ldg::Ldg;
use crate::options::PrefetchOptions;
use crate::report::MethodReport;
use crate::stride::{dominant_stride, inter_iteration_samples};

/// An address trace gathered by instrumented execution.
///
/// The VM's profiling hook calls [`record`](Self::record) for every
/// execution of every candidate load; the profile is then fed to
/// [`optimize_with_profile`].
#[derive(Clone, Debug, Default)]
pub struct OfflineProfile {
    traces: HashMap<InstrRef, Vec<Addr>>,
    /// Cap on samples kept per site (Wu's profiling is sampling-based).
    pub max_samples_per_site: usize,
}

impl OfflineProfile {
    /// Creates an empty profile with the default per-site sample cap.
    pub fn new() -> Self {
        OfflineProfile {
            traces: HashMap::new(),
            max_samples_per_site: 4096,
        }
    }

    /// Records one executed load.
    pub fn record(&mut self, site: InstrRef, addr: Addr) {
        let v = self.traces.entry(site).or_default();
        if v.len() < self.max_samples_per_site {
            v.push(addr);
        }
    }

    /// Number of sites with samples.
    pub fn site_count(&self) -> usize {
        self.traces.len()
    }

    /// The dominant inter-iteration stride of a site, if any.
    pub fn stride_of(&self, site: InstrRef, options: &PrefetchOptions) -> Option<i64> {
        let trace = self.traces.get(&site)?;
        // Reuse the on-line sample shape: iteration indices are unknown
        // off-line, so successive executions are used directly.
        let fake: Vec<(u32, Addr)> = trace.iter().map(|&a| (0, a)).collect();
        let samples = inter_iteration_samples(&fake);
        dominant_stride(&samples, options.majority, options.min_samples)
    }
}

/// Optimizes `func` using a previously collected [`OfflineProfile`] instead
/// of object inspection. Only inter-iteration patterns can be discovered
/// this way, so this is meaningful with [`PrefetchOptions::inter`].
pub fn optimize_with_profile(
    _program: &Program,
    func: &Function,
    layout: &Layout,
    profile: &OfflineProfile,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
) -> (Function, MethodReport) {
    let start = std::time::Instant::now();
    let mut report = MethodReport {
        method: func.name().to_string(),
        ..MethodReport::default()
    };
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let forest = LoopForest::compute(func, &cfg, &dom);
    let ud = UseDef::compute(func, &cfg);
    let codegen = PrefetchCodegen::new(layout, proc, options);
    let mut work = func.clone();
    let mut merged: HashMap<InstrRef, Vec<spf_ir::Instr>> = HashMap::new();
    let mut already: HashSet<InstrRef> = HashSet::new();
    for target in forest.postorder() {
        let mut ldg = Ldg::build(func, &ud, &forest, target);
        if ldg.is_empty() {
            continue;
        }
        for id in ldg.node_ids().collect::<Vec<_>>() {
            let site = ldg.node(id).site;
            ldg.node_mut(id).inter_stride = profile.stride_of(site, options);
        }
        let (insertions, prefetches) = codegen.plan(
            &mut work,
            &ldg,
            &HashSet::new(),
            &mut already,
            &mut spf_trace::NoopSink,
        );
        for (site, instrs) in insertions {
            merged.entry(site).or_default().extend(instrs);
        }
        report.loops.push(crate::report::LoopReport {
            header: forest.info(target).header,
            depth: forest.depth(target),
            ldg_nodes: ldg.len(),
            ldg_edges: ldg.edges().len(),
            ldg_text: String::new(),
            inspected_iterations: 0,
            inspected_steps: 0,
            inter_patterns: ldg
                .node_ids()
                .filter(|&id| ldg.node(id).inter_stride.is_some())
                .count(),
            intra_patterns: 0,
            prefetches,
            // Offline profiling has no inspection step to cross-check,
            // no inspection cost, and no static proofs.
            stride_check: Default::default(),
            inspection_cycles: 0,
            static_sites: 0,
            site_provenance: Vec::new(),
        });
    }
    apply_insertions(&mut work, &merged);
    report.total_prefetches = report.count_prefetches();
    report.pass_nanos = start.elapsed().as_nanos();
    (work, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_records_and_caps() {
        let mut p = OfflineProfile::new();
        p.max_samples_per_site = 3;
        let site = InstrRef::new(spf_ir::BlockId::new(0), 0);
        for i in 0..10u64 {
            p.record(site, 1000 + 8 * i);
        }
        assert_eq!(p.site_count(), 1);
        let opts = PrefetchOptions {
            min_samples: 2,
            ..PrefetchOptions::default()
        };
        assert_eq!(p.stride_of(site, &opts), Some(8));
    }

    #[test]
    fn irregular_trace_has_no_stride() {
        let mut p = OfflineProfile::new();
        let site = InstrRef::new(spf_ir::BlockId::new(0), 0);
        for a in [100u64, 900, 250, 4000, 1, 777] {
            p.record(site, a);
        }
        assert_eq!(p.stride_of(site, &PrefetchOptions::default()), None);
    }
}
