//! Optimization reports: what the pass discovered and generated.
//!
//! Reports regenerate the paper's expository artifacts (Table 1's load
//! list, Figure 5's load dependence graph) and feed the compile-time
//! accounting of Figure 11.

use spf_analysis::{Provenance, SiteProvenance};
use spf_ir::{BlockId, InstrRef, PrefetchKind};

/// The shape of one generated prefetch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeneratedKind {
    /// `prefetch(A(Lx) + d*c)`.
    InterStride {
        /// The inter-iteration stride `d`.
        stride: i64,
    },
    /// `a = spec_load(A(Lx) + d*c)`.
    SpeculativeLoad {
        /// The anchor's inter-iteration stride `d`.
        stride: i64,
    },
    /// `prefetch(F[Lx,Ly](a))`.
    Dereference {
        /// The constant offset `F` adds.
        offset: i64,
    },
    /// `prefetch(F[Lx,Ly](a) + S[Ly,Lz])`.
    IntraStride {
        /// The accumulated intra-iteration stride `S`.
        stride: i64,
    },
}

impl std::fmt::Display for GeneratedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeneratedKind::InterStride { stride } => write!(f, "inter-stride d={stride}"),
            GeneratedKind::SpeculativeLoad { stride } => write!(f, "spec-load d={stride}"),
            GeneratedKind::Dereference { offset } => write!(f, "dereference F=+{offset}"),
            GeneratedKind::IntraStride { stride } => write!(f, "intra-stride S={stride}"),
        }
    }
}

/// One prefetch (or speculative load) the code generator emitted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GeneratedPrefetch {
    /// The load site the prefetch serves.
    pub anchor: InstrRef,
    /// Code shape.
    pub kind: GeneratedKind,
    /// Hardware mapping chosen (§3.3).
    pub mapped: PrefetchKind,
    /// Where the stride behind this prefetch came from: a static proof,
    /// object inspection, or both (static-first mode only; the legacy
    /// modes tag everything [`Provenance::Dynamic`]).
    pub provenance: Provenance,
}

/// How statically-proven strides compare with inspection-derived ones for
/// the LDG candidates of one loop (or, summed, one method).
///
/// The static side comes from `spf-analysis`'s affine stride analysis
/// (SCEV-lite), the dynamic side from object inspection (§3.2). The
/// cross-check is record-only: it never changes what the code generator
/// emits, it just measures where each technique sees strides the other
/// cannot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StrideCrossCheck {
    /// Both sides proved the same stride.
    pub agree: usize,
    /// Both sides produced a stride, but different ones (e.g. inspection
    /// saw a data-dependent pattern the affine model cannot express).
    pub disagree: usize,
    /// Only the static analysis proved a stride (inspection saw too few
    /// samples or no dominant pattern).
    pub static_only: usize,
    /// Only inspection derived a stride — the paper's motivating case
    /// (pointer chases and other non-affine address streams).
    pub dynamic_only: usize,
}

impl StrideCrossCheck {
    /// Classifies one candidate given both sides' verdicts.
    pub fn record(&mut self, statically: Option<i64>, inspected: Option<i64>) {
        match (statically, inspected) {
            (Some(s), Some(d)) if s == d => self.agree += 1,
            (Some(_), Some(_)) => self.disagree += 1,
            (Some(_), None) => self.static_only += 1,
            (None, Some(_)) => self.dynamic_only += 1,
            (None, None) => {}
        }
    }

    /// Accumulates another tally into this one.
    pub fn add(&mut self, other: &StrideCrossCheck) {
        self.agree += other.agree;
        self.disagree += other.disagree;
        self.static_only += other.static_only;
        self.dynamic_only += other.dynamic_only;
    }

    /// Candidates the static analysis proved a stride for.
    pub fn static_total(&self) -> usize {
        self.agree + self.disagree + self.static_only
    }

    /// Candidates object inspection derived a stride for.
    pub fn inspected_total(&self) -> usize {
        self.agree + self.disagree + self.dynamic_only
    }

    /// Fraction of both-sided candidates where the strides match; `None`
    /// when no candidate was seen by both sides.
    pub fn agreement_rate(&self) -> Option<f64> {
        let both = self.agree + self.disagree;
        (both > 0).then(|| self.agree as f64 / both as f64)
    }
}

impl std::fmt::Display for StrideCrossCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "agree={} disagree={} static-only={} dyn-only={}",
            self.agree, self.disagree, self.static_only, self.dynamic_only
        )
    }
}

/// Per-loop findings.
#[derive(Clone, Debug)]
pub struct LoopReport {
    /// The loop's header block.
    pub header: BlockId,
    /// Nesting depth (1 = top level).
    pub depth: usize,
    /// Nodes in the load dependence graph.
    pub ldg_nodes: usize,
    /// Edges in the load dependence graph.
    pub ldg_edges: usize,
    /// Rendered LDG (Table 1 / Figure 5 style).
    pub ldg_text: String,
    /// Target-loop iterations interpreted by object inspection.
    pub inspected_iterations: u32,
    /// Instructions interpreted.
    pub inspected_steps: u64,
    /// Nodes with an inter-iteration stride pattern.
    pub inter_patterns: usize,
    /// Edges with an intra-iteration stride pattern.
    pub intra_patterns: usize,
    /// Prefetches generated for this loop.
    pub prefetches: Vec<GeneratedPrefetch>,
    /// Static-vs-inspected stride comparison over this loop's candidates.
    pub stride_check: StrideCrossCheck,
    /// Deterministic compile-time cost of object inspection for this loop
    /// (`INSPECT_CYCLES_PER_STEP` per interpreted instruction plus
    /// `INSPECT_CYCLES_PER_SAMPLE` per recorded address sample). Zero when
    /// static-first proved every candidate and skipped inspection.
    pub inspection_cycles: u64,
    /// LDG candidates whose stride was proved statically and therefore
    /// excluded from the inspection record set (static-first mode only).
    pub static_sites: usize,
    /// Per-site provenance records for the provenance lint, one per
    /// distinct prefetch anchor.
    pub site_provenance: Vec<SiteProvenance>,
}

/// Per-method findings plus compile-time accounting.
#[derive(Clone, Debug, Default)]
pub struct MethodReport {
    /// Method name.
    pub method: String,
    /// One entry per loop, in processing (postorder) order.
    pub loops: Vec<LoopReport>,
    /// Wall-clock nanoseconds spent in the prefetching pass (inspection +
    /// analysis + codegen) — the numerator of Figure 11's left bars.
    pub pass_nanos: u128,
    /// Total prefetches inserted.
    pub total_prefetches: usize,
    /// Compilation generation that produced this report: 0 for the first
    /// JIT of the method, +1 for every adaptive recompilation.
    pub generation: u32,
}

impl MethodReport {
    /// Sums the generated prefetches over all loops.
    pub fn count_prefetches(&self) -> usize {
        self.loops.iter().map(|l| l.prefetches.len()).sum()
    }

    /// Sums the static-vs-inspected stride tallies over all loops.
    pub fn stride_check_totals(&self) -> StrideCrossCheck {
        let mut total = StrideCrossCheck::default();
        for l in &self.loops {
            total.add(&l.stride_check);
        }
        total
    }

    /// Sums the deterministic inspection cost over all loops.
    pub fn inspection_cycles(&self) -> u64 {
        self.loops.iter().map(|l| l.inspection_cycles).sum()
    }

    /// Sums the statically-proved (inspection-skipped) sites over all
    /// loops.
    pub fn static_sites(&self) -> usize {
        self.loops.iter().map(|l| l.static_sites).sum()
    }

    /// All per-site provenance records of this compilation.
    pub fn provenance_records(&self) -> impl Iterator<Item = &SiteProvenance> {
        self.loops.iter().flat_map(|l| l.site_provenance.iter())
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "method {}: {} loop(s)", self.method, self.loops.len());
        for lr in &self.loops {
            let _ = writeln!(
                s,
                "  loop@{} depth={} ldg={}n/{}e inspected {} iters ({} steps) \
                 patterns inter={} intra={} prefetches={} strides[{}]",
                lr.header,
                lr.depth,
                lr.ldg_nodes,
                lr.ldg_edges,
                lr.inspected_iterations,
                lr.inspected_steps,
                lr.inter_patterns,
                lr.intra_patterns,
                lr.prefetches.len(),
                lr.stride_check
            );
            for p in &lr.prefetches {
                let _ = writeln!(s, "    {} @{} [{}]", p.kind, p.anchor, p.mapped);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(
            GeneratedKind::InterStride { stride: 128 }.to_string(),
            "inter-stride d=128"
        );
        assert_eq!(
            GeneratedKind::IntraStride { stride: 48 }.to_string(),
            "intra-stride S=48"
        );
    }

    #[test]
    fn report_render() {
        let r = MethodReport {
            method: "findInMemory".into(),
            loops: vec![LoopReport {
                header: BlockId::new(2),
                depth: 1,
                ldg_nodes: 11,
                ldg_edges: 8,
                ldg_text: String::new(),
                inspected_iterations: 20,
                inspected_steps: 900,
                inter_patterns: 1,
                intra_patterns: 2,
                prefetches: vec![],
                stride_check: StrideCrossCheck::default(),
                inspection_cycles: 3800,
                static_sites: 0,
                site_provenance: vec![],
            }],
            pass_nanos: 1000,
            total_prefetches: 0,
            generation: 0,
        };
        let text = r.render();
        assert!(text.contains("findInMemory"));
        assert!(text.contains("ldg=11n/8e"));
        assert!(text.contains("strides[agree=0"));
    }

    #[test]
    fn stride_cross_check_tally() {
        let mut c = StrideCrossCheck::default();
        c.record(Some(8), Some(8)); // agree
        c.record(Some(8), Some(16)); // disagree
        c.record(Some(4), None); // static only
        c.record(None, Some(160)); // dynamic only
        c.record(None, None); // neither side: not a candidate
        assert_eq!(c.agree, 1);
        assert_eq!(c.disagree, 1);
        assert_eq!(c.static_total(), 3);
        assert_eq!(c.inspected_total(), 3);
        assert_eq!(c.agreement_rate(), Some(0.5));
        let mut t = StrideCrossCheck::default();
        t.add(&c);
        t.add(&c);
        assert_eq!(t.dynamic_only, 2);
        assert_eq!(StrideCrossCheck::default().agreement_rate(), None);
    }
}
