//! Object inspection: ultra-lightweight profiling by partial interpretation
//! (paper §3.2).
//!
//! When the JIT compiles a method, the actual values of its parameters are
//! available. The inspector interprets the method from its entry using those
//! values, **without causing any side effects**:
//!
//! * stores go to a *shadow table* keyed by address, never to the real heap
//!   (the paper's "copy of the stack frame" is our copied register file,
//!   and its "hash table" of updated addresses is [`Inspector`]'s shadow
//!   map);
//! * allocations go to a *private heap* at a distinct address range;
//! * method invocations are skipped, their results `unknown`;
//! * any instruction with an `unknown` operand produces `unknown`.
//!
//! Loops encountered *before* the target loop have their bodies interpreted
//! only once; the target loop is interpreted a configurable number of times
//! (20 in the paper) while the addresses used by the candidate loads are
//! recorded.

use std::collections::{HashMap, HashSet};

use spf_heap::{
    static_addr, Addr, Heap, HeapRead, Value, ARRAY_DATA_OFFSET, NULL, PRIVATE_HEAP_BASE,
};
use spf_ir::loops::{LoopForest, LoopId};
use spf_ir::{
    BinOp, BlockId, CmpOp, Conv, ElemTy, Function, Instr, InstrRef, Program, Terminator, UnOp,
};

use crate::options::PrefetchOptions;

/// Cap on visits of a loop header *nested inside the target loop* per
/// target-loop iteration, protecting the step budget from large inner
/// loops.
const NESTED_HEADER_CAP: u32 = 64;

/// Offset of the array-length word, re-exported for address recording.
const ARRAY_LENGTH_OFFSET: u64 = 8;

/// The address trace gathered by one inspection.
#[derive(Clone, Debug, Default)]
pub struct InspectionResult {
    /// Per load site: `(target-loop iteration, address)` in execution order.
    pub traces: HashMap<InstrRef, Vec<(u32, Addr)>>,
    /// Number of target-loop iterations interpreted.
    pub iterations: u32,
    /// Instructions interpreted.
    pub steps: u64,
    /// Total visits of each nested loop header (for trip-count estimates).
    pub nested_header_visits: HashMap<BlockId, u64>,
    /// Whether interpretation stopped because the step budget ran out.
    pub hit_step_budget: bool,
}

impl InspectionResult {
    /// Average trip count of the nested loop with header `h` per target
    /// iteration (visits include the final exit test, hence the `- 1`).
    pub fn avg_nested_trips(&self, h: BlockId) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        let visits = *self.nested_header_visits.get(&h).unwrap_or(&0) as f64;
        (visits / self.iterations as f64 - 1.0).max(0.0)
    }
}

/// The partial interpreter. Borrowed state only — inspection never mutates
/// the program, the heap, or the statics.
pub struct Inspector<'a> {
    program: &'a Program,
    func: &'a Function,
    heap: &'a dyn HeapRead,
    statics: &'a [Value],
    forest: &'a LoopForest,
    options: &'a PrefetchOptions,
}

impl std::fmt::Debug for Inspector<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inspector")
            .field("func", &self.func.name())
            .finish_non_exhaustive()
    }
}

enum Flow {
    Goto(BlockId),
    Stop,
}

impl<'a> Inspector<'a> {
    /// Creates an inspector for `func` of `program` over the given heap and
    /// statics snapshot.
    pub fn new(
        program: &'a Program,
        func: &'a Function,
        heap: &'a dyn HeapRead,
        statics: &'a [Value],
        forest: &'a LoopForest,
        options: &'a PrefetchOptions,
    ) -> Self {
        Inspector {
            program,
            func,
            heap,
            statics,
            forest,
            options,
        }
    }

    /// Partially interprets the method with `args`, recording the addresses
    /// used by the loads in `record` while inside loop `target`.
    pub fn run(
        &self,
        args: &[Value],
        target: LoopId,
        record: &HashSet<InstrRef>,
    ) -> InspectionResult {
        assert_eq!(
            args.len(),
            self.func.param_count(),
            "argument count mismatch"
        );
        let target_info = self.forest.info(target);
        let target_header = target_info.header;
        // Classify every other loop relative to the target.
        let mut ancestors: HashSet<LoopId> = HashSet::new();
        let mut nested: HashSet<LoopId> = HashSet::new();
        for lid in self.forest.postorder() {
            if lid == target {
                continue;
            }
            let info = self.forest.info(lid);
            if info.contains(target_header) {
                ancestors.insert(lid);
            } else if target_info.contains(info.header) {
                nested.insert(lid);
            }
        }

        let mut regs: Vec<Option<Value>> = vec![None; self.func.reg_count()];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(*a);
        }
        let mut shadow: HashMap<Addr, Option<Value>> = HashMap::new();
        let mut private = Heap::with_base(self.heap.layout().clone(), 1 << 20, PRIVATE_HEAP_BASE);
        let mut result = InspectionResult::default();
        let mut entries: HashMap<BlockId, u32> = HashMap::new(); // outside loops
        let mut entries_this_iter: HashMap<BlockId, u32> = HashMap::new(); // nested loops

        let mut cur = self.func.entry();
        'outer: loop {
            // --- block-entry bookkeeping --------------------------------
            if cur == target_header {
                result.iterations += 1;
                entries_this_iter.clear();
                if result.iterations > self.options.inspect_iterations {
                    break;
                }
            } else if let Some(lid) = self.forest.innermost(cur) {
                let info = self.forest.info(lid);
                if info.header == cur {
                    if nested.contains(&lid) {
                        *entries_this_iter.entry(cur).or_insert(0) += 1;
                        *result.nested_header_visits.entry(cur).or_insert(0) += 1;
                    } else if !ancestors.contains(&lid) {
                        *entries.entry(cur).or_insert(0) += 1;
                    }
                }
            }

            let in_target = target_info.contains(cur);

            // --- instructions -------------------------------------------
            let block = self.func.block(cur);
            for (i, instr) in block.instrs.iter().enumerate() {
                result.steps += 1;
                if result.steps > self.options.max_inspect_steps {
                    result.hit_step_budget = true;
                    break 'outer;
                }
                let site = InstrRef::new(cur, i);
                self.step(
                    instr,
                    site,
                    in_target,
                    record,
                    &mut regs,
                    &mut shadow,
                    &mut private,
                    &mut result,
                    0,
                );
            }

            // --- terminator ---------------------------------------------
            match self.resolve(
                cur,
                &block.term,
                &regs,
                target,
                &ancestors,
                &nested,
                &entries,
                &entries_this_iter,
            ) {
                Flow::Goto(next) => {
                    // A header entry that immediately leaves the loop was
                    // the exit test, not an iteration.
                    if cur == target_header && !target_info.contains(next) {
                        result.iterations = result.iterations.saturating_sub(1);
                    }
                    cur = next;
                }
                Flow::Stop => break,
            }
        }
        // Iterations were counted on header entry; the last entry that
        // overflowed the budget is not a recorded iteration.
        result.iterations = result.iterations.min(self.options.inspect_iterations);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        instr: &Instr,
        site: InstrRef,
        in_target: bool,
        record: &HashSet<InstrRef>,
        regs: &mut [Option<Value>],
        shadow: &mut HashMap<Addr, Option<Value>>,
        private: &mut Heap,
        result: &mut InspectionResult,
        depth: u32,
    ) {
        let record_addr = |addr: Addr, result: &mut InspectionResult| {
            if in_target && record.contains(&site) {
                let iter = result.iterations.saturating_sub(1);
                result.traces.entry(site).or_default().push((iter, addr));
            }
        };
        match instr {
            Instr::Const { dst, value } => {
                regs[dst.index()] = Some(match value {
                    spf_ir::Const::I32(v) => Value::I32(*v),
                    spf_ir::Const::I64(v) => Value::I64(*v),
                    spf_ir::Const::F64(v) => Value::F64(*v),
                    spf_ir::Const::Null => Value::Ref(NULL),
                });
            }
            Instr::Move { dst, src } => regs[dst.index()] = regs[src.index()],
            Instr::Bin { dst, op, a, b } => {
                regs[dst.index()] = match (regs[a.index()], regs[b.index()]) {
                    (Some(x), Some(y)) => eval_bin(*op, x, y),
                    _ => None,
                };
            }
            Instr::Un { dst, op, src } => {
                regs[dst.index()] = regs[src.index()].and_then(|v| eval_un(*op, v));
            }
            Instr::Cmp { dst, op, a, b } => {
                regs[dst.index()] = match (regs[a.index()], regs[b.index()]) {
                    (Some(x), Some(y)) => eval_cmp(*op, x, y).map(Value::I32),
                    _ => None,
                };
            }
            Instr::Convert { dst, conv, src } => {
                regs[dst.index()] = regs[src.index()].map(|v| eval_conv(*conv, v));
            }
            Instr::GetField { dst, obj, field } => {
                regs[dst.index()] = match regs[obj.index()] {
                    Some(Value::Ref(a)) if a != NULL => {
                        let off = self.heap.layout().field_offset(*field);
                        let addr = a.wrapping_add(off);
                        record_addr(addr, result);
                        self.read_mem(shadow, private, addr, self.program.field(*field).ty)
                    }
                    _ => None,
                };
            }
            Instr::PutField { obj, field, src } => {
                if let Some(Value::Ref(a)) = regs[obj.index()] {
                    if a != NULL {
                        let addr = a.wrapping_add(self.heap.layout().field_offset(*field));
                        shadow.insert(addr, regs[src.index()]);
                    }
                }
            }
            Instr::GetStatic { dst, sid } => {
                let addr = static_addr(*sid);
                record_addr(addr, result);
                regs[dst.index()] = match shadow.get(&addr) {
                    Some(v) => *v,
                    None => self.statics.get(sid.index()).copied(),
                };
            }
            Instr::PutStatic { sid, src } => {
                shadow.insert(static_addr(*sid), regs[src.index()]);
            }
            Instr::ALoad {
                dst,
                arr,
                idx,
                elem,
            } => {
                regs[dst.index()] = match (regs[arr.index()], regs[idx.index()]) {
                    (Some(Value::Ref(a)), Some(Value::I32(i))) if a != NULL => {
                        let addr = a
                            .wrapping_add(ARRAY_DATA_OFFSET)
                            .wrapping_add((i as i64).wrapping_mul(elem.size() as i64) as u64);
                        record_addr(addr, result);
                        self.read_mem(shadow, private, addr, *elem)
                    }
                    _ => None,
                };
            }
            Instr::AStore {
                arr,
                idx,
                src,
                elem,
            } => {
                if let (Some(Value::Ref(a)), Some(Value::I32(i))) =
                    (regs[arr.index()], regs[idx.index()])
                {
                    if a != NULL {
                        let addr = a
                            .wrapping_add(ARRAY_DATA_OFFSET)
                            .wrapping_add((i as i64).wrapping_mul(elem.size() as i64) as u64);
                        shadow.insert(addr, regs[src.index()]);
                    }
                }
            }
            Instr::ArrayLen { dst, arr } => {
                regs[dst.index()] = match regs[arr.index()] {
                    Some(Value::Ref(a)) if a != NULL => {
                        let addr = a.wrapping_add(ARRAY_LENGTH_OFFSET);
                        record_addr(addr, result);
                        self.read_mem(shadow, private, addr, ElemTy::I64)
                            .map(|v| Value::I32(v.as_i64() as i32))
                    }
                    _ => None,
                };
            }
            Instr::New { dst, class } => {
                regs[dst.index()] = private.alloc_object(*class).map(Value::Ref);
            }
            Instr::NewArray { dst, elem, len } => {
                regs[dst.index()] = match regs[len.index()] {
                    Some(Value::I32(n)) if n >= 0 => {
                        private.alloc_array(*elem, n as u64).map(Value::Ref)
                    }
                    _ => None,
                };
            }
            Instr::Call { dst, callee, args } => {
                // §3.2: "we interpret a method invocation by simply skipping
                // it and assuming that the return value, if any, is unknown".
                // With `inspect_calls` (the inter-procedural variant the
                // paper discusses as a trade-off) we step into the callee
                // instead, still side-effect-free and budget-bounded.
                let mut ret = None;
                if self.options.inspect_calls && depth < self.options.max_call_depth {
                    let argv: Vec<Option<Value>> = args.iter().map(|r| regs[r.index()]).collect();
                    ret = self.run_callee(*callee, argv, shadow, private, result, depth + 1);
                }
                if let Some(d) = dst {
                    regs[d.index()] = ret;
                }
            }
            Instr::Prefetch { .. } => {}
            Instr::SpecLoad { dst, .. } => regs[dst.index()] = None,
        }
    }

    /// Interprets a callee to completion (inter-procedural inspection).
    /// Shares the shadow table and private heap with the caller; records
    /// nothing (instruction sites are function-local). Returns the callee's
    /// return value when known.
    fn run_callee(
        &self,
        callee: spf_ir::MethodId,
        args: Vec<Option<Value>>,
        shadow: &mut HashMap<Addr, Option<Value>>,
        private: &mut Heap,
        result: &mut InspectionResult,
        depth: u32,
    ) -> Option<Value> {
        let func = self.program.method(callee).func();
        if func.param_count() != args.len() {
            return None;
        }
        let mut regs: Vec<Option<Value>> = vec![None; func.reg_count()];
        regs[..args.len()].copy_from_slice(&args);
        let empty = HashSet::new();
        let mut cur = func.entry();
        loop {
            let block = func.block(cur);
            for (i, instr) in block.instrs.iter().enumerate() {
                result.steps += 1;
                if result.steps > self.options.max_inspect_steps {
                    result.hit_step_budget = true;
                    return None;
                }
                let site = InstrRef::new(cur, i);
                self.step(
                    instr, site, false, &empty, &mut regs, shadow, private, result, depth,
                );
            }
            match &block.term {
                Terminator::Jump(t) => cur = *t,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    cur = match regs[cond.index()] {
                        Some(Value::I32(v)) => {
                            if v != 0 {
                                *then_bb
                            } else {
                                *else_bb
                            }
                        }
                        _ => *then_bb,
                    };
                }
                Terminator::Return(v) => return v.and_then(|r| regs[r.index()]),
                Terminator::Unreachable => return None,
            }
        }
    }

    fn read_mem(
        &self,
        shadow: &HashMap<Addr, Option<Value>>,
        private: &Heap,
        addr: Addr,
        ty: ElemTy,
    ) -> Option<Value> {
        if let Some(v) = shadow.get(&addr) {
            return *v;
        }
        if addr >= PRIVATE_HEAP_BASE {
            private.try_read(addr, ty)
        } else {
            self.heap.try_read(addr, ty)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        cur: BlockId,
        term: &Terminator,
        regs: &[Option<Value>],
        target: LoopId,
        ancestors: &HashSet<LoopId>,
        nested: &HashSet<LoopId>,
        entries: &HashMap<BlockId, u32>,
        entries_this_iter: &HashMap<BlockId, u32>,
    ) -> Flow {
        match term {
            Terminator::Jump(t) => Flow::Goto(*t),
            Terminator::Return(_) | Terminator::Unreachable => Flow::Stop,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                // Force-exit rule for exhausted loops: prefer the arm that
                // leaves the innermost exhausted loop containing `cur`.
                let mut containing: Vec<LoopId> = self
                    .forest
                    .postorder()
                    .into_iter()
                    .filter(|&l| self.forest.info(l).contains(cur))
                    .collect();
                containing.sort_by_key(|&l| self.forest.info(l).block_count());
                for lid in containing {
                    if lid == target || ancestors.contains(&lid) {
                        continue;
                    }
                    let info = self.forest.info(lid);
                    let exhausted = if nested.contains(&lid) {
                        entries_this_iter.get(&info.header).copied().unwrap_or(0)
                            >= NESTED_HEADER_CAP
                    } else {
                        entries.get(&info.header).copied().unwrap_or(0) >= 2
                    };
                    if exhausted {
                        let then_in = info.contains(*then_bb);
                        let else_in = info.contains(*else_bb);
                        if then_in != else_in {
                            return Flow::Goto(if then_in { *else_bb } else { *then_bb });
                        }
                    }
                }
                match regs[cond.index()] {
                    Some(Value::I32(v)) => Flow::Goto(if v != 0 { *then_bb } else { *else_bb }),
                    // Unknown condition: take the `then` arm. In the paper's
                    // motivating example the common path (a failed compare
                    // that `continue`s the outer loop) is the taken arm, and
                    // inspection has no side effects, so a wrong guess only
                    // costs profile accuracy.
                    _ => Flow::Goto(*then_bb),
                }
            }
        }
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Option<Value> {
    Some(match (a, b) {
        (Value::I32(x), Value::I32(y)) => Value::I32(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u32).wrapping_shr(y as u32)) as i32,
        }),
        (Value::I64(x), Value::I64(y)) => Value::I64(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u64).wrapping_shr(y as u32)) as i64,
        }),
        (Value::F64(x), Value::F64(y)) => Value::F64(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            _ => return None,
        }),
        _ => return None,
    })
}

fn eval_un(op: UnOp, v: Value) -> Option<Value> {
    Some(match (op, v) {
        (UnOp::Neg, Value::I32(x)) => Value::I32(x.wrapping_neg()),
        (UnOp::Neg, Value::I64(x)) => Value::I64(x.wrapping_neg()),
        (UnOp::Neg, Value::F64(x)) => Value::F64(-x),
        (UnOp::Not, Value::I32(x)) => Value::I32(!x),
        (UnOp::Not, Value::I64(x)) => Value::I64(!x),
        _ => return None,
    })
}

fn eval_cmp(op: CmpOp, a: Value, b: Value) -> Option<i32> {
    let ord = match (a, b) {
        (Value::I32(x), Value::I32(y)) => x.partial_cmp(&y),
        (Value::I64(x), Value::I64(y)) => x.partial_cmp(&y),
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(&y),
        (Value::Ref(x), Value::Ref(y)) => x.partial_cmp(&y),
        _ => None,
    }?;
    let r = match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    };
    Some(r as i32)
}

fn eval_conv(conv: Conv, v: Value) -> Value {
    match (conv, v) {
        (Conv::I32ToI64, Value::I32(x)) => Value::I64(x as i64),
        (Conv::I64ToI32, Value::I64(x)) => Value::I32(x as i32),
        (Conv::I32ToF64, Value::I32(x)) => Value::F64(x as f64),
        (Conv::F64ToI32, Value::F64(x)) => Value::I32(x as i32),
        (Conv::I64ToF64, Value::I64(x)) => Value::F64(x as f64),
        (Conv::F64ToI64, Value::F64(x)) => Value::I64(x as i64),
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_heap::Layout;
    use spf_ir::cfg::Cfg;
    use spf_ir::dom::DomTree;
    use spf_ir::{MethodId, ProgramBuilder, Ty};

    /// Builds a program with an array of `Node { next, v }` objects and a
    /// method `walk(arr)` summing `arr[i].v` over a loop, plus a real heap
    /// populated with `n` nodes allocated back to back.
    struct Fixture {
        program: Program,
        method: MethodId,
        heap: Heap,
        arr: Addr,
        node_size: u64,
    }

    fn fixture(n: i32) -> Fixture {
        let mut pb = ProgramBuilder::new();
        let (node_cls, nf) = pb.add_class("Node", &[("v", ElemTy::I32), ("pad", ElemTy::I64)]);
        let mut b = pb.function("walk", &[Ty::Ref], Some(Ty::I32));
        let arr = b.param(0);
        let sum = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(sum, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let node = b.aload(arr, i, ElemTy::Ref);
                let v = b.getfield(node, nf[0]);
                let s = b.add(sum, v);
                b.move_(sum, s);
            },
        );
        b.ret(Some(sum));
        let method = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let node_size = layout.class_size(node_cls);
        let mut heap = Heap::new(layout, 1 << 20);
        let arr_addr = heap.alloc_array(ElemTy::Ref, n as u64).unwrap();
        for i in 0..n {
            let node = heap.alloc_object(node_cls).unwrap();
            heap.write(
                arr_addr + ARRAY_DATA_OFFSET + 8 * i as u64,
                ElemTy::Ref,
                Value::Ref(node),
            )
            .unwrap();
            heap.write(
                node + heap.layout_tables().field_offset(nf[0]),
                ElemTy::I32,
                Value::I32(i),
            )
            .unwrap();
        }
        Fixture {
            program,
            method,
            heap,
            arr: arr_addr,
            node_size,
        }
    }

    fn inspect(fx: &Fixture, opts: &PrefetchOptions) -> (InspectionResult, Vec<InstrRef>) {
        let func = fx.program.method(fx.method).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let record: Vec<InstrRef> = func
            .instr_sites()
            .filter(|&s| func.instr(s).is_ldg_load())
            .collect();
        let set: HashSet<InstrRef> = record.iter().copied().collect();
        let insp = Inspector::new(&fx.program, func, &fx.heap, &[], &forest, opts);
        let res = insp.run(&[Value::Ref(fx.arr)], forest.roots()[0], &set);
        (res, record)
    }

    #[test]
    fn records_twenty_iterations() {
        let fx = fixture(100);
        let (res, _) = inspect(&fx, &PrefetchOptions::default());
        assert_eq!(res.iterations, 20);
        assert!(!res.hit_step_budget);
    }

    #[test]
    fn aload_addresses_have_constant_stride() {
        let fx = fixture(100);
        let (res, record) = inspect(&fx, &PrefetchOptions::default());
        let func = fx.program.method(fx.method).func();
        let aload_site = record
            .iter()
            .copied()
            .find(|&s| matches!(func.instr(s), Instr::ALoad { .. }))
            .unwrap();
        let trace = &res.traces[&aload_site];
        assert_eq!(trace.len(), 20);
        for (k, w) in trace.windows(2).enumerate() {
            assert_eq!(w[1].1 - w[0].1, 8, "iteration {k}");
        }
    }

    #[test]
    fn getfield_addresses_stride_by_node_size() {
        let fx = fixture(100);
        let (res, record) = inspect(&fx, &PrefetchOptions::default());
        let func = fx.program.method(fx.method).func();
        let gf_site = record
            .iter()
            .copied()
            .find(|&s| matches!(func.instr(s), Instr::GetField { .. }))
            .unwrap();
        let trace = &res.traces[&gf_site];
        assert_eq!(trace.len(), 20);
        for w in trace.windows(2) {
            assert_eq!(w[1].1 - w[0].1, fx.node_size);
        }
    }

    #[test]
    fn short_loop_stops_at_exit() {
        let fx = fixture(5);
        let (res, _) = inspect(&fx, &PrefetchOptions::default());
        assert_eq!(res.iterations, 5, "loop exits after 5 iterations");
    }

    #[test]
    fn no_side_effects_on_real_heap() {
        // A method that stores into the array should leave the heap intact.
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("clobber", &[Ty::Ref], None);
        let arr = b.param(0);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let c = b.const_i32(-1);
                b.astore(arr, i, c, ElemTy::I32);
            },
        );
        let m = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let mut heap = Heap::new(layout, 1 << 16);
        let arr_addr = heap.alloc_array(ElemTy::I32, 8).unwrap();
        for i in 0..8u64 {
            heap.write(
                arr_addr + ARRAY_DATA_OFFSET + 4 * i,
                ElemTy::I32,
                Value::I32(7),
            )
            .unwrap();
        }
        let func = program.method(m).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let opts = PrefetchOptions::default();
        let insp = Inspector::new(&program, func, &heap, &[], &forest, &opts);
        let res = insp.run(&[Value::Ref(arr_addr)], forest.roots()[0], &HashSet::new());
        assert_eq!(res.iterations, 8);
        for i in 0..8u64 {
            assert_eq!(
                heap.read(arr_addr + ARRAY_DATA_OFFSET + 4 * i, ElemTy::I32)
                    .unwrap(),
                Value::I32(7),
                "heap unchanged"
            );
        }
    }

    #[test]
    fn shadow_writes_are_visible_to_later_reads() {
        // x.v = 9; sum += x.v  — the read must see the shadowed 9.
        let mut pb = ProgramBuilder::new();
        let (ncls, nf) = pb.add_class("N", &[("v", ElemTy::I32)]);
        let mut b = pb.function("rw", &[Ty::Ref, Ty::I32], Some(Ty::I32));
        let obj = b.param(0);
        let n = b.param(1);
        let out = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(out, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let nine = b.const_i32(9);
                b.putfield(obj, nf[0], nine);
                let v = b.getfield(obj, nf[0]);
                let s = b.add(out, v);
                b.move_(out, s);
            },
        );
        b.ret(Some(out));
        let m = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let mut heap = Heap::new(layout, 1 << 16);
        let o = heap.alloc_object(ncls).unwrap();
        let func = program.method(m).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let opts = PrefetchOptions::default();
        let gf = func
            .instr_sites()
            .find(|&s| matches!(func.instr(s), Instr::GetField { .. }))
            .unwrap();
        let set: HashSet<InstrRef> = [gf].into_iter().collect();
        let insp = Inspector::new(&program, func, &heap, &[], &forest, &opts);
        let res = insp.run(&[Value::Ref(o), Value::I32(5)], forest.roots()[0], &set);
        assert_eq!(res.iterations, 5);
        // The real heap still holds 0.
        assert_eq!(
            heap.read(o + heap.layout_tables().field_offset(nf[0]), ElemTy::I32)
                .unwrap(),
            Value::I32(0)
        );
    }

    #[test]
    fn allocations_go_to_private_heap() {
        let mut pb = ProgramBuilder::new();
        let (ncls, nf) = pb.add_class("N", &[("v", ElemTy::I32)]);
        let mut b = pb.function("mk", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let o = b.new_object(ncls);
                b.putfield(o, nf[0], i);
                let v = b.getfield(o, nf[0]);
                let s = b.add(acc, v);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let m = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let heap = Heap::new(layout, 1 << 16);
        let used_before = heap.used();
        let func = program.method(m).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let opts = PrefetchOptions::default();
        let insp = Inspector::new(&program, func, &heap, &[], &forest, &opts);
        let res = insp.run(&[Value::I32(6)], forest.roots()[0], &HashSet::new());
        assert_eq!(res.iterations, 6);
        assert_eq!(heap.used(), used_before, "real heap untouched");
    }

    #[test]
    fn pre_target_loop_runs_once() {
        // A warm-up loop precedes the target loop; its body must execute
        // exactly once under inspection.
        let mut pb = ProgramBuilder::new();
        let sid = pb.add_static("count", ElemTy::I32);
        let mut b = pb.function("two_loops", &[Ty::I32], None);
        let n = b.param(0);
        // Pre-loop: count += 1 each iteration.
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let c = b.getstatic(sid);
                let one = b.const_i32(1);
                let c2 = b.add(c, one);
                b.putstatic(sid, c2);
            },
        );
        // Target loop.
        b.for_i32(0, 1, CmpOp::Lt, |_| n, |_, _| {});
        let m = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let heap = Heap::new(layout, 1 << 12);
        let func = program.method(m).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        // Target = the loop in program order whose header comes second.
        let target = *forest
            .roots()
            .iter()
            .max_by_key(|&&l| forest.info(l).header)
            .unwrap();
        let opts = PrefetchOptions::default();
        let statics = [Value::I32(0)];
        let insp = Inspector::new(&program, func, &heap, &statics, &forest, &opts);
        let res = insp.run(&[Value::I32(1000)], target, &HashSet::new());
        // The pre-loop ran once (not 1000 times): very few steps consumed.
        assert!(res.steps < 400, "steps = {}", res.steps);
        assert_eq!(res.iterations, 20);
    }

    #[test]
    fn unknown_branch_takes_then_arm() {
        // cond depends on a skipped call; loop body increments a counter in
        // the then arm... build: for i<n { if unknown { } else { } } and
        // verify inspection completes 20 iterations without diverging.
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("opaque", &[], Some(Ty::I32));
        let mut cb = pb.define(callee);
        let one = cb.const_i32(1);
        cb.ret(Some(one));
        cb.finish();
        let mut b = pb.function("u", &[Ty::I32], None);
        let n = b.param(0);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let c = b.call(callee, &[]);
                b.if_else(c, |_| {}, |_| {});
            },
        );
        let m = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let heap = Heap::new(layout, 1 << 12);
        let func = program.method(m).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let opts = PrefetchOptions::default();
        let insp = Inspector::new(&program, func, &heap, &[], &forest, &opts);
        let res = insp.run(&[Value::I32(100)], forest.roots()[0], &HashSet::new());
        assert_eq!(res.iterations, 20);
    }

    #[test]
    fn step_budget_is_respected() {
        let fx = fixture(100);
        let opts = PrefetchOptions {
            max_inspect_steps: 30,
            ..PrefetchOptions::default()
        };
        let (res, _) = inspect(&fx, &opts);
        assert!(res.hit_step_budget);
        assert!(res.steps <= 31);
    }

    use spf_ir::CmpOp;
}

#[cfg(test)]
mod interprocedural_tests {
    use super::*;
    use spf_heap::Layout;
    use spf_ir::cfg::Cfg;
    use spf_ir::dom::DomTree;
    use spf_ir::{CmpOp, ProgramBuilder, Ty};

    /// A loop whose element loads go through a helper call:
    /// `node = get(arr, i); v = node.data`. Without inter-procedural
    /// inspection the node reference is unknown and no addresses are
    /// recorded; with `inspect_calls` the helper is interpreted and the
    /// getfield's stride is visible.
    fn fixture() -> (Program, spf_ir::MethodId, Heap, Addr) {
        let mut pb = ProgramBuilder::new();
        let (ncls, nf) = pb.add_class("N", &[("data", ElemTy::I32), ("pad", ElemTy::I64)]);
        let get = {
            let mut b = pb.function("get", &[Ty::Ref, Ty::I32], Some(Ty::Ref));
            let arr = b.param(0);
            let i = b.param(1);
            let v = b.aload(arr, i, ElemTy::Ref);
            b.ret(Some(v));
            b.finish()
        };
        let mut b = pb.function("walk", &[Ty::Ref], Some(Ty::I32));
        let arr = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let node = b.call(get, &[arr, i]);
                let v = b.getfield(node, nf[0]);
                let s = b.add(acc, v);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let walk = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let mut heap = Heap::new(layout, 1 << 20);
        let arr = heap.alloc_array(ElemTy::Ref, 64).unwrap();
        for i in 0..64u64 {
            let n = heap.alloc_object(ncls).unwrap();
            heap.write(arr + ARRAY_DATA_OFFSET + 8 * i, ElemTy::Ref, Value::Ref(n))
                .unwrap();
        }
        (program, walk, heap, arr)
    }

    fn inspect(opts: &PrefetchOptions) -> (InspectionResult, Option<InstrRef>) {
        let (program, walk, heap, arr) = fixture();
        let func = program.method(walk).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let gf_site = func
            .instr_sites()
            .find(|&s| matches!(func.instr(s), Instr::GetField { .. }));
        let record: HashSet<InstrRef> = gf_site.into_iter().collect();
        let insp = Inspector::new(&program, func, &heap, &[], &forest, opts);
        let res = insp.run(&[Value::Ref(arr)], forest.roots()[0], &record);
        (res, gf_site)
    }

    #[test]
    fn skipped_calls_leave_addresses_unknown() {
        let opts = PrefetchOptions::default();
        let (res, gf) = inspect(&opts);
        assert!(
            !res.traces.contains_key(&gf.unwrap()),
            "call result unknown -> no addresses recorded"
        );
    }

    #[test]
    fn stepping_into_calls_reveals_strides() {
        let opts = PrefetchOptions {
            inspect_calls: true,
            ..PrefetchOptions::default()
        };
        let (res, gf) = inspect(&opts);
        let trace = res.traces.get(&gf.unwrap()).expect("addresses recorded");
        assert_eq!(trace.len(), 20);
        let node_size = 32; // header 16 + i32 (pad to 8) + i64
        for w in trace.windows(2) {
            assert_eq!(w[1].1 - w[0].1, node_size, "constant stride visible");
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        // A recursive callee: inspection must terminate within budget.
        let mut pb = ProgramBuilder::new();
        let rec = pb.declare("rec", &[Ty::I32], Some(Ty::I32));
        {
            let mut b = pb.define(rec);
            let n = b.param(0);
            let z = b.const_i32(0);
            let stop = b.le(n, z);
            b.if_(stop, |b| b.ret(Some(n)));
            let one = b.const_i32(1);
            let n1 = b.sub(n, one);
            let r = b.call(rec, &[n1]);
            b.ret(Some(r));
            b.finish();
        }
        let mut b = pb.function("driver", &[Ty::I32], None);
        let n = b.param(0);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let _ = b.call(rec, &[i]);
            },
        );
        let driver = b.finish();
        let program = pb.finish();
        let layout = Layout::compute(&program);
        let heap = Heap::new(layout, 1 << 12);
        let func = program.method(driver).func();
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let opts = PrefetchOptions {
            inspect_calls: true,
            max_call_depth: 3,
            ..PrefetchOptions::default()
        };
        let insp = Inspector::new(&program, func, &heap, &[], &forest, &opts);
        let res = insp.run(&[Value::I32(1000)], forest.roots()[0], &HashSet::new());
        assert!(res.steps <= opts.max_inspect_steps + 1);
        assert_eq!(res.iterations, 20, "driver loop still inspected");
    }
}
