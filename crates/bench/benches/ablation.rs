//! Ablation harness (`harness = false`): varies the design choices
//! DESIGN.md calls out and reports *simulated cycles* — the metric that
//! matters — rather than wall time. Runs under `cargo bench` like the
//! Criterion benches.
//!
//! Ablated knobs:
//!
//! * prefetch mode (BASELINE / INTER / INTER+INTRA) — the headline claim;
//! * object-inspection iteration count (the paper uses 20);
//! * majority threshold (the paper uses 75%);
//! * scheduling distance `c` (the paper fixes 1);
//! * guarded-load vs hardware-prefetch mapping (§3.3);
//! * profitability analysis on/off;
//! * discovery mechanism: object inspection vs Wu-style off-line profiling.

use spf_bench::{run_workload, RunPlan};
use spf_core::codegen::GuardedPolicy;
use spf_core::offline::optimize_with_profile;
use spf_core::PrefetchOptions;
use spf_heap::Layout;
use spf_memsim::ProcessorConfig;
use spf_vm::{Vm, VmConfig};
use spf_workloads::Size;

fn plan() -> RunPlan {
    RunPlan {
        size: Size::Small,
        warmup_runs: 2,
        measured_runs: 1,
    }
}

fn measure(label: &str, options: PrefetchOptions, baseline: Option<u64>) -> u64 {
    let spec = spf_workloads::all()
        .into_iter()
        .find(|s| s.name == "db")
        .unwrap();
    let m = run_workload(&spec, &options, &ProcessorConfig::pentium4(), &plan());
    match baseline {
        Some(base) => println!(
            "{label:<44} {:>14} cycles  ({:+.1}% vs baseline)",
            m.best_cycles,
            (base as f64 / m.best_cycles as f64 - 1.0) * 100.0
        ),
        None => println!("{label:<44} {:>14} cycles", m.best_cycles),
    }
    m.best_cycles
}

/// The off-line-profiling ablation: profile a training run, optimize the
/// hot method from the profile alone, install it, and measure.
fn offline_discovery() -> u64 {
    let spec = spf_workloads::all()
        .into_iter()
        .find(|s| s.name == "db")
        .unwrap();
    let built = (spec.build)(Size::Small);
    let p4 = ProcessorConfig::pentium4();
    // Training run with instrumentation, prefetching off.
    let mut train = Vm::new(
        built.program.clone(),
        VmConfig {
            heap_bytes: built.heap_bytes,
            prefetch: PrefetchOptions::off(),
            collect_offline_profile: true,
            ..VmConfig::default()
        },
        p4.clone(),
    );
    train.call(built.entry, &[]).expect("training run");
    let profiles = train.offline_profiles().clone();
    // Production run: install profile-optimized bodies up front.
    let mut vm = Vm::new(
        built.program.clone(),
        VmConfig {
            heap_bytes: built.heap_bytes,
            prefetch: PrefetchOptions::off(),
            ..VmConfig::default()
        },
        p4.clone(),
    );
    let layout = Layout::compute(&built.program);
    let options = PrefetchOptions::inter(); // Wu: inter-iteration only
    for (&mid, profile) in &profiles {
        let func = built.program.method(mid).func();
        let (optimized, _) =
            optimize_with_profile(&built.program, func, &layout, profile, &options, &p4);
        vm.install_compiled(mid, optimized);
    }
    vm.call(built.entry, &[]).expect("warm");
    vm.reset_measurement();
    vm.call(built.entry, &[]).expect("measured");
    let cycles = vm.stats().cycles;
    println!("{:<44} {:>14} cycles", "discovery=offline-profile (Wu, INTER)", cycles);
    cycles
}

fn main() {
    // `cargo bench -- --test` probes benches; skip the heavy work then.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    println!("== ablation study on db (Pentium 4, Size::Small) ==");
    let base = measure("mode=BASELINE", PrefetchOptions::off(), None);
    measure("mode=INTER", PrefetchOptions::inter(), Some(base));
    measure("mode=INTER+INTRA", PrefetchOptions::inter_intra(), Some(base));

    for iters in [5u32, 20, 50] {
        measure(
            &format!("inspect_iterations={iters}"),
            PrefetchOptions {
                inspect_iterations: iters,
                ..PrefetchOptions::inter_intra()
            },
            Some(base),
        );
    }
    for majority in [0.5f64, 0.75, 1.0] {
        measure(
            &format!("majority={majority}"),
            PrefetchOptions {
                majority,
                ..PrefetchOptions::inter_intra()
            },
            Some(base),
        );
    }
    for distance in [1u32, 2, 4] {
        measure(
            &format!("scheduling_distance={distance}"),
            PrefetchOptions {
                distance,
                ..PrefetchOptions::inter_intra()
            },
            Some(base),
        );
    }
    for (label, policy) in [
        ("guarded_policy=Auto (paper)", GuardedPolicy::Auto),
        ("guarded_policy=AlwaysHardware", GuardedPolicy::AlwaysHardware),
        ("guarded_policy=AlwaysGuarded", GuardedPolicy::AlwaysGuarded),
    ] {
        measure(
            label,
            PrefetchOptions {
                guarded_policy: policy,
                ..PrefetchOptions::inter_intra()
            },
            Some(base),
        );
    }
    measure(
        "inspect_calls=true (inter-procedural)",
        PrefetchOptions {
            inspect_calls: true,
            ..PrefetchOptions::inter_intra()
        },
        Some(base),
    );
    measure(
        "profitability=off",
        PrefetchOptions {
            profitability: false,
            ..PrefetchOptions::inter_intra()
        },
        Some(base),
    );
    inlining_ablation();
    unrolling_ablation();
    offline_discovery();
}

/// Unrolling ablation (§3.3: unrolling stretches the effective prefetch
/// scheduling distance): db with unroll factors 2 and 4.
fn unrolling_ablation() {
    for factor in [2u32, 4] {
        let spec = spf_workloads::all()
            .into_iter()
            .find(|s| s.name == "db")
            .unwrap();
        let built = (spec.build)(Size::Small);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                prefetch: PrefetchOptions::inter_intra(),
                unroll_factor: factor,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(built.entry, &[]).expect("warm");
        vm.call(built.entry, &[]).expect("warm");
        vm.reset_measurement();
        vm.call(built.entry, &[]).expect("measured");
        println!(
            "{:<44} {:>14} cycles",
            format!("unroll_factor={factor} (+INTER+INTRA)"),
            vm.stats().cycles
        );
    }
}

/// Inlining ablation: run db with the baseline JIT inliner enabled.
fn inlining_ablation() {
    let spec = spf_workloads::all()
        .into_iter()
        .find(|s| s.name == "db")
        .unwrap();
    let built = (spec.build)(Size::Small);
    let mut vm = Vm::new(
        built.program,
        VmConfig {
            heap_bytes: built.heap_bytes,
            prefetch: PrefetchOptions::inter_intra(),
            inline_small_methods: true,
            ..VmConfig::default()
        },
        ProcessorConfig::pentium4(),
    );
    vm.call(built.entry, &[]).expect("warm");
    vm.call(built.entry, &[]).expect("warm");
    vm.reset_measurement();
    vm.call(built.entry, &[]).expect("measured");
    println!(
        "{:<44} {:>14} cycles",
        "inline_small_methods=true (+INTER+INTRA)",
        vm.stats().cycles
    );
}
