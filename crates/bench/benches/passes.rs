//! Criterion micro-benchmarks of the compiler machinery: the cost of the
//! analyses, of object inspection, and of the whole prefetching pass —
//! the quantities behind Figure 11's "< 3% of JIT compilation time".

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};
use spf_core::{Inspector, Ldg, PrefetchOptions, StridePrefetcher};
use spf_heap::{Heap, HeapRead, Layout, Value, ARRAY_DATA_OFFSET};
use spf_ir::cfg::Cfg;
use spf_ir::defuse::UseDef;
use spf_ir::dom::DomTree;
use spf_ir::loops::LoopForest;
use spf_ir::{CmpOp, ElemTy, InstrRef, MethodId, Program, ProgramBuilder, Ty};
use spf_memsim::ProcessorConfig;

/// A pointer-chasing fixture: `arr[i] -> node.data -> data[0]` with 512
/// live nodes on a real heap.
struct Fixture {
    program: Program,
    method: MethodId,
    heap: Heap,
    arr: u64,
}

fn fixture() -> Fixture {
    let mut pb = ProgramBuilder::new();
    let (ncls, nf) = pb.add_class(
        "Node",
        &[
            ("data", ElemTy::Ref),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
            ("pad3", ElemTy::I64),
            ("pad4", ElemTy::I64),
            ("pad5", ElemTy::I64),
            ("pad6", ElemTy::I64),
            ("pad7", ElemTy::I64),
            ("pad8", ElemTy::I64),
            ("pad9", ElemTy::I64),
        ],
    );
    let mut b = pb.function("chase", &[Ty::Ref], Some(Ty::I32));
    let arr = b.param(0);
    let sum = b.new_reg(Ty::I32);
    let z = b.const_i32(0);
    b.move_(sum, z);
    b.for_i32(0, 1, CmpOp::Lt, |b| b.arraylen(arr), |b, i| {
        let node = b.aload(arr, i, ElemTy::Ref);
        let data = b.getfield(node, nf[0]);
        let zero = b.const_i32(0);
        let v = b.aload(data, zero, ElemTy::I32);
        let s = b.add(sum, v);
        b.move_(sum, s);
    });
    b.ret(Some(sum));
    let method = b.finish();
    let program = pb.finish();
    let layout = Layout::compute(&program);
    let mut heap = Heap::new(layout, 4 << 20);
    let n = 512u64;
    let arr_addr = heap.alloc_array(ElemTy::Ref, n).unwrap();
    for i in 0..n {
        let node = heap.alloc_object(ncls).unwrap();
        let data = heap.alloc_array(ElemTy::I32, 16).unwrap();
        heap.write(node + 16, ElemTy::Ref, Value::Ref(data)).unwrap();
        heap.write(
            arr_addr + ARRAY_DATA_OFFSET + 8 * i,
            ElemTy::Ref,
            Value::Ref(node),
        )
        .unwrap();
    }
    Fixture {
        program,
        method,
        heap,
        arr: arr_addr,
    }
}

fn bench_analyses(c: &mut Criterion) {
    let fx = fixture();
    let func = fx.program.method(fx.method).func();
    c.bench_function("cfg+dom+loops+usedef", |b| {
        b.iter(|| {
            let cfg = Cfg::compute(func);
            let dom = DomTree::compute(func, &cfg);
            let forest = LoopForest::compute(func, &cfg, &dom);
            let ud = UseDef::compute(func, &cfg);
            (forest.len(), ud.defs_of(spf_ir::Reg::new(0)).count())
        })
    });
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let forest = LoopForest::compute(func, &cfg, &dom);
    let ud = UseDef::compute(func, &cfg);
    let target = forest.roots()[0];
    c.bench_function("ldg_build", |b| {
        b.iter(|| Ldg::build(func, &ud, &forest, target).len())
    });
}

fn bench_inspection(c: &mut Criterion) {
    let fx = fixture();
    let func = fx.program.method(fx.method).func();
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let forest = LoopForest::compute(func, &cfg, &dom);
    let ud = UseDef::compute(func, &cfg);
    let target = forest.roots()[0];
    let ldg = Ldg::build(func, &ud, &forest, target);
    let record: HashSet<InstrRef> = ldg.node_ids().map(|id| ldg.node(id).site).collect();
    let options = PrefetchOptions::default();
    c.bench_function("object_inspection_20_iters", |b| {
        b.iter(|| {
            let insp = Inspector::new(&fx.program, func, &fx.heap, &[], &forest, &options);
            insp.run(&[Value::Ref(fx.arr)], target, &record).steps
        })
    });
}

fn bench_full_pass(c: &mut Criterion) {
    let fx = fixture();
    let func = fx.program.method(fx.method).func();
    let p4 = ProcessorConfig::pentium4();
    for (label, options) in [
        ("prefetch_pass_inter", PrefetchOptions::inter()),
        ("prefetch_pass_inter_intra", PrefetchOptions::inter_intra()),
    ] {
        let opt = StridePrefetcher::new(options);
        c.bench_function(label, |b| {
            b.iter(|| {
                opt.optimize(
                    &fx.program,
                    func,
                    &fx.heap as &dyn HeapRead,
                    &[],
                    &[Value::Ref(fx.arr)],
                    &p4,
                )
                .report
                .total_prefetches
            })
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analyses, bench_inspection, bench_full_pass
);
criterion_main!(benches);
