//! Criterion wrappers around the figure experiments, one bench per figure
//! family, at `Size::Tiny` so `cargo bench` completes quickly. The figure
//! data itself (paper-scale) is produced by the `figures` binary:
//!
//! ```text
//! cargo run --release -p spf-bench --bin figures
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spf_bench::{run_workload, RunPlan};
use spf_core::PrefetchOptions;
use spf_memsim::ProcessorConfig;
use spf_workloads::Size;

fn plan() -> RunPlan {
    RunPlan {
        size: Size::Tiny,
        warmup_runs: 2,
        measured_runs: 1,
    }
}

/// Figures 6/7 (speedups): each sample runs one workload under one
/// configuration end to end.
fn bench_speedup_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7_speedups");
    group.sample_size(10);
    let interesting = ["db", "jess", "Euler", "compress"];
    for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
        for spec in spf_workloads::all() {
            if !interesting.contains(&spec.name) {
                continue;
            }
            for options in [
                PrefetchOptions::off(),
                PrefetchOptions::inter(),
                PrefetchOptions::inter_intra(),
            ] {
                let id = BenchmarkId::new(
                    format!("{}/{}", proc.name, spec.name),
                    options.mode.to_string(),
                );
                group.bench_with_input(id, &options, |b, options| {
                    b.iter(|| run_workload(&spec, options, &proc, &plan()).best_cycles)
                });
            }
        }
    }
    group.finish();
}

/// Figures 8–10 (MPIs): one sample collects the Pentium 4 miss counters of
/// the db workload under BASELINE and INTER+INTRA.
fn bench_mpi_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_fig9_fig10_mpis");
    group.sample_size(10);
    let spec = spf_workloads::all()
        .into_iter()
        .find(|s| s.name == "db")
        .unwrap();
    let p4 = ProcessorConfig::pentium4();
    for options in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
        let id = BenchmarkId::new("db_p4", options.mode.to_string());
        group.bench_with_input(id, &options, |b, options| {
            b.iter(|| {
                let m = run_workload(&spec, options, &p4, &plan());
                (
                    m.mem.l1_load_misses,
                    m.mem.l2_load_misses,
                    m.mem.dtlb_load_misses,
                )
            })
        });
    }
    group.finish();
}

/// Figure 11 (compile-time overhead): each sample measures the JIT with
/// the prefetching pass enabled.
fn bench_compile_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_compile_overhead");
    group.sample_size(10);
    let spec = spf_workloads::all()
        .into_iter()
        .find(|s| s.name == "jess")
        .unwrap();
    let p4 = ProcessorConfig::pentium4();
    for options in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
        let id = BenchmarkId::new("jess_jit", options.mode.to_string());
        group.bench_with_input(id, &options, |b, options| {
            b.iter(|| {
                let m = run_workload(&spec, options, &p4, &plan());
                m.prefetch_pass_fraction
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_speedup_grid,
    bench_mpi_counters,
    bench_compile_overhead
);
criterion_main!(benches);
