//! Parallel execution of the experiment matrix.
//!
//! Every (workload, processor, prefetch mode) cell of the paper's grid is
//! an independent simulation: each cell builds its own [`spf_vm::Vm`],
//! heap, and memory system, and shares no mutable state with any other
//! cell. That makes the sweep embarrassingly parallel — cells are handed
//! to a bounded pool of `std::thread` workers through an atomic cursor and
//! the results are re-assembled in canonical matrix order, so the output
//! is identical to a sequential sweep regardless of the worker count or
//! scheduling. The checksum cross-check at the join point enforces the
//! other half of the invariant: a workload computes the same answer in
//! all ten of its configurations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use spf_core::PrefetchOptions;
use spf_memsim::ProcessorConfig;
use spf_trace::{NoopSink, RingSink, TraceSink};
use spf_workloads::{Size, WorkloadSpec};

use crate::runner::{
    run_prepared, run_prepared_traced, Measurement, PreparedWorkload, RunPlan, WorkloadTrace,
};

/// One matrix cell: a workload under one prefetch configuration on one
/// simulated processor.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The workload to run.
    pub spec: WorkloadSpec,
    /// The simulated processor.
    pub proc: ProcessorConfig,
    /// The prefetch configuration.
    pub options: PrefetchOptions,
}

/// A completed cell: the measurement plus how long the host spent on it.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The simulated measurement (independent of scheduling).
    pub measurement: Measurement,
    /// Host wall-clock nanoseconds of the run that produced
    /// [`measurement`](Self::measurement).
    pub wall_nanos: u128,
    /// Median host wall-clock nanoseconds over
    /// [`RunPlan::timing_runs`] complete, bit-identical runs of the cell
    /// (equal to [`wall_nanos`](Self::wall_nanos) when `timing_runs` is 1).
    /// This is the number host-throughput comparisons should use: the
    /// median suppresses scheduler noise a single sample is exposed to.
    pub host_wall_ns: u128,
}

/// Enumerates the matrix in canonical order — workloads in Table 3
/// (registry) order × {Pentium 4, Athlon MP} × {BASELINE, INTER,
/// INTER+INTRA, ADAPTIVE, STATIC-FIRST} — restricted to workloads
/// accepted by `keep`. STATIC-FIRST is appended after the four
/// pre-existing modes so their cells keep their positions (and their
/// bit-identical numbers) in every artifact derived from this order.
pub fn cells(keep: impl Fn(&str) -> bool) -> Vec<Cell> {
    let mut out = Vec::new();
    for spec in spf_workloads::all() {
        if !keep(spec.name) {
            continue;
        }
        for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
            for options in [
                PrefetchOptions::off(),
                PrefetchOptions::inter(),
                PrefetchOptions::inter_intra(),
                PrefetchOptions::adaptive(),
                PrefetchOptions::static_first(),
            ] {
                out.push(Cell {
                    spec: spec.clone(),
                    proc: proc.clone(),
                    options,
                });
            }
        }
    }
    out
}

/// The default worker count: `$SPF_JOBS` when set to a positive integer,
/// otherwise the host's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SPF_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A completed traced cell: the measurement plus its trace artifacts.
#[derive(Clone, Debug)]
pub struct TracedCellResult {
    /// The simulated measurement (bit-identical to the untraced one).
    pub measurement: Measurement,
    /// Events, site table, and per-site attribution of the best run.
    pub trace: WorkloadTrace,
    /// Host wall-clock nanoseconds spent simulating this cell.
    pub wall_nanos: u128,
}

fn run_cell(plan: &RunPlan, cell: &Cell, prep: &PreparedWorkload) -> CellResult {
    let t0 = Instant::now();
    let measurement = run_prepared(prep, &cell.options, &cell.proc, plan);
    let wall_nanos = t0.elapsed().as_nanos();
    let mut times = vec![wall_nanos];
    for _ in 1..plan.timing_runs.max(1) {
        let t = Instant::now();
        let repeat = run_prepared(prep, &cell.options, &cell.proc, plan);
        times.push(t.elapsed().as_nanos());
        let diff = measurement.simulated_diff(&repeat);
        assert!(
            diff.is_empty(),
            "{}/{}/{}: timing repetition diverged from the first run: {diff:?}",
            measurement.name,
            measurement.mode,
            measurement.processor
        );
    }
    times.sort_unstable();
    CellResult {
        measurement,
        wall_nanos,
        host_wall_ns: times[times.len() / 2],
    }
}

fn run_cell_traced(
    plan: &RunPlan,
    cell: &Cell,
    prep: &PreparedWorkload<RingSink>,
) -> TracedCellResult {
    let t0 = Instant::now();
    let (measurement, trace) = run_prepared_traced(prep, &cell.options, &cell.proc, plan);
    TracedCellResult {
        measurement,
        trace,
        wall_nanos: t0.elapsed().as_nanos(),
    }
}

/// Builds one [`PreparedWorkload`] per distinct workload in `cells` and
/// hands every cell an `Arc` to its workload's instance, so the pool
/// decodes each program once instead of once per cell.
fn prepare_cells<S: TraceSink>(size: Size, cells: &[Cell]) -> Vec<Arc<PreparedWorkload<S>>> {
    let mut by_name: Vec<Arc<PreparedWorkload<S>>> = Vec::new();
    cells
        .iter()
        .map(|c| match by_name.iter().find(|p| p.name() == c.spec.name) {
            Some(p) => Arc::clone(p),
            None => {
                let p = Arc::new(PreparedWorkload::new(&c.spec, size));
                by_name.push(Arc::clone(&p));
                p
            }
        })
        .collect()
}

/// Runs `count` independent tasks on up to `jobs` worker threads through
/// an atomic cursor, returning results in task order regardless of
/// scheduling. Worker panics are propagated.
fn run_pool<R: Send>(jobs: usize, count: usize, task: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let jobs = jobs.clamp(1, count.max(1));
    if jobs == 1 {
        return (0..count).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    // Claim tasks through the shared cursor; keep results
                    // local until the join to avoid any lock on the hot
                    // path.
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        done.push((i, task(i)));
                    }
                    done
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(done) => {
                    for (i, r) in done {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every task was claimed by a worker"))
        .collect()
}

/// Runs `cells` on up to `jobs` worker threads, returning results in the
/// same order as the input regardless of scheduling.
///
/// # Panics
///
/// Panics if a workload faults (propagating the worker's panic).
pub fn run_cells(plan: &RunPlan, jobs: usize, cells: &[Cell]) -> Vec<CellResult> {
    let preps = prepare_cells::<NoopSink>(plan.size, cells);
    run_pool(jobs, cells.len(), |i| run_cell(plan, &cells[i], &preps[i]))
}

/// [`run_cells`] with event tracing: every cell runs with a recording
/// sink and returns its trace artifacts alongside the measurement.
///
/// # Panics
///
/// Panics if a workload faults (propagating the worker's panic).
pub fn run_cells_traced(plan: &RunPlan, jobs: usize, cells: &[Cell]) -> Vec<TracedCellResult> {
    let preps = prepare_cells::<RingSink>(plan.size, cells);
    run_pool(jobs, cells.len(), |i| {
        run_cell_traced(plan, &cells[i], &preps[i])
    })
}

/// Runs the whole (filtered) matrix on up to `jobs` workers and verifies
/// the cross-configuration checksum invariant at the join point.
///
/// # Panics
///
/// Panics if a workload faults or if a workload's checksum differs
/// between any two of its configurations.
pub fn run_matrix(plan: &RunPlan, jobs: usize, keep: impl Fn(&str) -> bool) -> Vec<CellResult> {
    let results = run_cells(plan, jobs, &cells(keep));
    assert_checksums_agree(&results);
    results
}

/// Asserts that every workload produced the same checksum in all of its
/// configurations — prefetching (and parallel scheduling) must never
/// change what a program computes.
///
/// # Panics
///
/// Panics on the first disagreement.
pub fn assert_checksums_agree(results: &[CellResult]) {
    let mut seen: Vec<(&str, i32)> = Vec::new();
    for r in results {
        let m = &r.measurement;
        match seen.iter().find(|(n, _)| *n == m.name) {
            Some((_, expected)) => assert_eq!(
                m.checksum, *expected,
                "{} checksum differs under {} / {}",
                m.name, m.mode, m.processor
            ),
            None => seen.push((m.name.as_str(), m.checksum)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_workloads::Size;

    fn tiny_plan() -> RunPlan {
        RunPlan {
            size: Size::Tiny,
            warmup_runs: 2,
            measured_runs: 1,
            timing_runs: 1,
        }
    }

    #[test]
    fn cells_enumerate_in_matrix_order() {
        let cs = cells(|_| true);
        assert_eq!(cs.len(), 12 * 2 * 5);
        // First workload occupies the first ten cells: P4 then Athlon,
        // each OFF/INTER/INTER+INTRA/ADAPTIVE/STATIC-FIRST.
        assert!(cs[..10].iter().all(|c| c.spec.name == cs[0].spec.name));
        assert_eq!(cs[0].proc.name, "Pentium 4");
        assert_eq!(cs[5].proc.name, "Athlon MP");
        // STATIC-FIRST is appended after the legacy modes, so their
        // positions within a (workload, processor) group are unchanged.
        assert_eq!(cs[4].options.mode, spf_core::PrefetchMode::StaticFirst);
        assert_eq!(cs[9].options.mode, spf_core::PrefetchMode::StaticFirst);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let plan = tiny_plan();
        let keep = |n: &str| n == "db";
        let seq = run_matrix(&plan, 1, keep);
        let par = run_matrix(&plan, 4, keep);
        assert_eq!(seq.len(), 10);
        assert_eq!(par.len(), 10);
        for (a, b) in seq.iter().zip(&par) {
            let diff = a.measurement.simulated_diff(&b.measurement);
            assert!(diff.is_empty(), "parallel run diverged: {diff:?}");
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
