//! Workload runner: warm-up, steady-state measurement, counter capture.

use std::sync::Arc;

use spf_core::{PrefetchMode, PrefetchOptions, StrideCrossCheck};
use spf_ir::MethodId;
use spf_memsim::{MemStats, ProcessorConfig};
use spf_trace::{attribute, Attribution, NoopSink, RingSink, SiteTable, TraceEvent, TraceSink};
use spf_vm::{Predecoded, Vm, VmConfig};
use spf_workloads::{Size, WorkloadSpec};

/// How a workload is run.
#[derive(Clone, Debug)]
pub struct RunPlan {
    /// Problem size.
    pub size: Size,
    /// Warm-up invocations of the entry (JIT compilation happens here).
    pub warmup_runs: u32,
    /// Measured invocations; the best (fewest cycles) is reported.
    pub measured_runs: u32,
    /// Timed repetitions of each matrix cell; a cell's `host_wall_ns` is
    /// the median over this many complete runs (1 = time the single run).
    /// Every repetition is asserted bit-identical to the first, so the
    /// extra runs only tighten host timing, never change a simulated
    /// number.
    pub timing_runs: u32,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            size: Size::Full,
            warmup_runs: 2,
            measured_runs: 2,
            timing_runs: 1,
        }
    }
}

/// One workload × configuration × processor measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub name: String,
    /// Prefetch configuration.
    pub mode: PrefetchMode,
    /// Processor name.
    pub processor: String,
    /// Best steady-state cycles over the measured runs.
    pub best_cycles: u64,
    /// Retired instructions in the best run.
    pub retired: u64,
    /// Memory counters of the best run.
    pub mem: MemStats,
    /// Fraction of execution cycles in compiled code (Table 3).
    pub compiled_fraction: f64,
    /// JIT time / total time during the warm-up phase (Figure 11, right).
    pub jit_fraction: f64,
    /// Prefetch-pass time / JIT time (Figure 11, left).
    pub prefetch_pass_fraction: f64,
    /// Total prefetches the JIT inserted across all methods.
    pub prefetches_inserted: usize,
    /// Static-vs-inspected stride comparison summed over all compiled
    /// methods (zero under `PrefetchMode::Off`, where no analysis runs).
    pub stride_check: StrideCrossCheck,
    /// Whole-method adaptive deoptimizations: warm-up plus the best
    /// measured run. Always 0 since invalidation went per-loop; kept so
    /// existing artifacts and parsers keep their column.
    pub deopts: u64,
    /// Full adaptive recompilations: warm-up plus the best measured run.
    pub recompiles: u64,
    /// Per-loop invalidations (stale loops' prefetch sites patched to
    /// no-ops, body kept compiled): warm-up plus the best measured run.
    /// Zero outside the adaptive-guard modes.
    pub loop_deopts: u64,
    /// Per-loop repatches (invalidated loops re-inspected and re-entered):
    /// warm-up plus the best measured run.
    pub loop_repatches: u64,
    /// Recompilations whose re-inspection re-agreed on prefetchable
    /// strides.
    pub reagreed: u64,
    /// Deterministic inspection cycles charged by the compile-time cost
    /// model: warm-up plus the best measured run (recompiles re-inspect).
    pub inspection_cycles: u64,
    /// Statically proved prefetch sites excluded from object inspection.
    /// Zero outside [`PrefetchMode::StaticFirst`].
    pub static_sites: u64,
    /// The workload's checksum (must agree across configurations).
    pub checksum: i32,
}

impl Measurement {
    /// Speedup of this measurement relative to a baseline measurement:
    /// `baseline_cycles / cycles` (1.0 = no change, >1 = faster).
    pub fn speedup_vs(&self, baseline: &Measurement) -> f64 {
        assert_eq!(self.name, baseline.name);
        baseline.best_cycles as f64 / self.best_cycles as f64
    }

    /// Compares every *simulation-determined* field against `other`,
    /// returning a description of each difference (empty = identical).
    ///
    /// `jit_fraction` and `prefetch_pass_fraction` are excluded on
    /// purpose: they are ratios of host wall-clock times, which vary from
    /// run to run even when the simulation is bit-identical. Everything
    /// the simulator itself computes — cycles, instruction counts, memory
    /// counters, checksums — must match exactly.
    pub fn simulated_diff(&self, other: &Measurement) -> Vec<String> {
        let mut diff = Vec::new();
        macro_rules! cmp {
            ($field:ident) => {
                if self.$field != other.$field {
                    diff.push(format!(
                        "{}: {:?} != {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    ));
                }
            };
        }
        cmp!(name);
        cmp!(mode);
        cmp!(processor);
        cmp!(best_cycles);
        cmp!(retired);
        cmp!(mem);
        cmp!(compiled_fraction);
        cmp!(prefetches_inserted);
        cmp!(stride_check);
        cmp!(deopts);
        cmp!(recompiles);
        cmp!(loop_deopts);
        cmp!(loop_repatches);
        cmp!(reagreed);
        cmp!(inspection_cycles);
        cmp!(static_sites);
        cmp!(checksum);
        diff
    }
}

/// The trace artifacts of one traced workload run.
#[derive(Clone, Debug)]
pub struct WorkloadTrace {
    /// Compile-time events from the warm-up phase: JIT begin, LDG
    /// construction, inspection, suppressions, planning, and site
    /// registration.
    pub compile_events: Vec<TraceEvent>,
    /// Runtime events of the best (reported) measured run.
    pub events: Vec<TraceEvent>,
    /// The prefetch-site table the JIT registered during warm-up.
    pub sites: SiteTable,
    /// Per-site effectiveness derived from [`events`](Self::events).
    pub attribution: Attribution,
    /// Events the sink dropped for capacity in the best run (non-zero
    /// means the attribution undercounts).
    pub lost: u64,
    /// Events the sink dropped during the warm-up phase (non-zero means
    /// [`compile_events`](Self::compile_events) is incomplete).
    pub warm_lost: u64,
}

/// A workload built and pre-decoded once, sharable (via `Arc`) by every
/// matrix cell — each (processor × mode) configuration — that runs it.
/// Cells construct their VMs with [`Vm::from_predecoded`], so the
/// program's method bodies are decoded into threaded code exactly once
/// per workload instead of once per cell.
pub struct PreparedWorkload<S: TraceSink = NoopSink> {
    name: &'static str,
    pre: Arc<Predecoded<S>>,
    entry: MethodId,
    heap_bytes: usize,
    expected: Option<i32>,
    compile_threshold: u32,
}

impl<S: TraceSink> PreparedWorkload<S> {
    /// Builds `spec` at `size` and pre-decodes its method bodies.
    pub fn new(spec: &WorkloadSpec, size: Size) -> Self {
        let built = (spec.build)(size);
        PreparedWorkload {
            name: spec.name,
            pre: Arc::new(Predecoded::new(built.program)),
            entry: built.entry,
            heap_bytes: built.heap_bytes,
            expected: built.expected,
            compile_threshold: built.compile_threshold,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Runs `spec` under `options` on `proc` according to `plan`.
///
/// # Panics
///
/// Panics if the workload faults, or if it produces different checksums on
/// different runs (workloads must be deterministic per invocation
/// sequence).
pub fn run_workload(
    spec: &WorkloadSpec,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    plan: &RunPlan,
) -> Measurement {
    run_prepared(&PreparedWorkload::new(spec, plan.size), options, proc, plan)
}

/// [`run_workload`] against an already [`PreparedWorkload`].
///
/// # Panics
///
/// Panics under the same conditions as [`run_workload`].
pub fn run_prepared(
    prep: &PreparedWorkload,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    plan: &RunPlan,
) -> Measurement {
    run_prepared_sink(prep, options, proc, plan, NoopSink).0
}

/// [`run_workload`] with event tracing into a default-capacity
/// [`RingSink`]. The measurement is produced by the *same* code path as
/// the untraced one — the harness asserts the two are bit-identical.
///
/// # Panics
///
/// Panics under the same conditions as [`run_workload`].
pub fn run_workload_traced(
    spec: &WorkloadSpec,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    plan: &RunPlan,
) -> (Measurement, WorkloadTrace) {
    run_prepared_traced(&PreparedWorkload::new(spec, plan.size), options, proc, plan)
}

/// [`run_workload_traced`] against an already [`PreparedWorkload`].
///
/// # Panics
///
/// Panics under the same conditions as [`run_workload`].
pub fn run_prepared_traced(
    prep: &PreparedWorkload<RingSink>,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    plan: &RunPlan,
) -> (Measurement, WorkloadTrace) {
    let (m, t) = run_prepared_sink(prep, options, proc, plan, RingSink::default());
    (m, t.expect("ring sink is enabled"))
}

/// The shared measurement protocol, generic over the trace sink so the
/// traced and untraced entry points cannot drift apart.
fn run_prepared_sink<S: TraceSink>(
    prep: &PreparedWorkload<S>,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    plan: &RunPlan,
    sink: S,
) -> (Measurement, Option<WorkloadTrace>) {
    let mut vm = Vm::from_predecoded(
        &prep.pre,
        VmConfig {
            heap_bytes: prep.heap_bytes,
            prefetch: options.clone(),
            compile_threshold: prep.compile_threshold,
            ..VmConfig::default()
        },
        proc.clone(),
        sink,
    );
    let mut checksum = 0;
    for _ in 0..plan.warmup_runs {
        checksum = vm
            .call(prep.entry, &[])
            .unwrap_or_else(|e| panic!("{} faulted: {e}", prep.name))
            .expect("entry returns a checksum")
            .as_i32();
    }
    if let Some(expected) = prep.expected {
        assert_eq!(checksum, expected, "{} checksum", prep.name);
    }
    let warm_stats = vm.stats().clone();
    let prefetches_inserted = vm.reports().iter().map(|r| r.total_prefetches).sum();
    let stride_check = {
        let mut total = StrideCrossCheck::default();
        for r in vm.reports() {
            total.add(&r.stride_check_totals());
        }
        total
    };
    let (compile_events, warm_lost) = if S::ENABLED {
        (vm.sink().snapshot(), vm.sink().lost())
    } else {
        (Vec::new(), 0)
    };

    struct BestRun {
        cycles: u64,
        retired: u64,
        mem: MemStats,
        compiled_fraction: f64,
        deopts: u64,
        recompiles: u64,
        loop_deopts: u64,
        loop_repatches: u64,
        reagreed: u64,
        inspection_cycles: u64,
        static_sites: u64,
    }
    let mut best: Option<BestRun> = None;
    let mut best_events: Vec<TraceEvent> = Vec::new();
    let mut best_lost = 0u64;
    for _ in 0..plan.measured_runs {
        // Clears counters, caches, and the trace sink: the captured events
        // are exactly the reported run's.
        vm.reset_measurement();
        let out = vm
            .call(prep.entry, &[])
            .unwrap_or_else(|e| panic!("{} faulted: {e}", prep.name))
            .expect("entry returns a checksum")
            .as_i32();
        assert_eq!(out, checksum, "{} is deterministic across runs", prep.name);
        let s = vm.stats();
        if best.as_ref().is_none_or(|b| s.cycles < b.cycles) {
            best = Some(BestRun {
                cycles: s.cycles,
                retired: s.retired_instructions,
                mem: *vm.mem_stats(),
                compiled_fraction: s.compiled_code_fraction(),
                deopts: s.deopts,
                recompiles: s.recompiles,
                loop_deopts: s.loop_deopts,
                loop_repatches: s.loop_repatches,
                reagreed: s.reagreed,
                inspection_cycles: s.inspection_cycles,
                static_sites: s.static_sites,
            });
            if S::ENABLED {
                best_events = vm.sink().snapshot();
                best_lost = vm.sink().lost();
            }
        }
    }
    let best = best.expect("at least one measured run");
    let trace = S::ENABLED.then(|| WorkloadTrace {
        attribution: attribute(&best_events),
        compile_events,
        events: best_events,
        sites: vm.sites().clone(),
        lost: best_lost,
        warm_lost,
    });
    let measurement = Measurement {
        name: prep.name.to_string(),
        mode: options.mode,
        processor: proc.name.clone(),
        best_cycles: best.cycles,
        retired: best.retired,
        mem: best.mem,
        compiled_fraction: best.compiled_fraction,
        jit_fraction: warm_stats.jit_time_fraction(),
        prefetch_pass_fraction: warm_stats.prefetch_pass_fraction(),
        prefetches_inserted,
        stride_check,
        deopts: warm_stats.deopts + best.deopts,
        recompiles: warm_stats.recompiles + best.recompiles,
        loop_deopts: warm_stats.loop_deopts + best.loop_deopts,
        loop_repatches: warm_stats.loop_repatches + best.loop_repatches,
        reagreed: warm_stats.reagreed + best.reagreed,
        inspection_cycles: warm_stats.inspection_cycles + best.inspection_cycles,
        static_sites: warm_stats.static_sites + best.static_sites,
        checksum,
    };
    (measurement, trace)
}
