//! `BENCH_matrix.json` — a machine-readable record of one matrix sweep.
//!
//! The emitter writes one JSON object per cell on its own line; the parser
//! reads exactly that shape back. Both are hand-rolled (the build
//! environment has no registry access, so serde is not available) and are
//! only promised to round-trip files produced by [`emit`] — this is a
//! benchmark log format, not a general JSON library.

use spf_workloads::Size;

use crate::matrix::CellResult;

/// The per-cell numbers recorded in `BENCH_matrix.json`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellSummary {
    /// Workload name.
    pub name: String,
    /// Prefetch mode (display form, e.g. `INTER+INTRA`).
    pub mode: String,
    /// Processor name.
    pub processor: String,
    /// Best steady-state simulated cycles.
    pub best_cycles: u64,
    /// Retired instructions in the best run.
    pub retired: u64,
    /// Host wall-clock nanoseconds spent simulating the cell.
    pub wall_nanos: u128,
    /// Median host wall-clock nanoseconds over the plan's timing
    /// repetitions (equals `wall_nanos` in files emitted before the field
    /// existed, or when `timing_runs` was 1).
    pub host_wall_ns: u128,
    /// Whole-method adaptive deoptimizations (always 0 since invalidation
    /// went per-loop; kept so old readers keep their column).
    pub deopts: u64,
    /// Full adaptive recompilations (zero outside the adaptive modes).
    pub recompiles: u64,
    /// Per-loop invalidations (zero outside the adaptive modes).
    pub loop_deopts: u64,
    /// Per-loop repatches (zero outside the adaptive modes).
    pub loop_repatches: u64,
    /// Recompilations that re-agreed on prefetchable strides.
    pub reagreed: u64,
    /// Deterministic inspection cycles charged by the compile-time cost
    /// model (zero under BASELINE, lower under STATIC-FIRST).
    pub inspection_cycles: u64,
    /// Statically proved sites excluded from inspection (STATIC-FIRST
    /// only).
    pub static_sites: u64,
    /// The workload's checksum.
    pub checksum: i32,
}

impl CellSummary {
    /// The (workload, mode, processor) key identifying this cell.
    pub fn key(&self) -> (String, String, String) {
        (self.name.clone(), self.mode.clone(), self.processor.clone())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a sweep as `BENCH_matrix.json`.
pub fn emit(results: &[CellResult], size: Size, jobs: usize, total_wall_nanos: u128) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"size\": \"{size:?}\",\n"));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"total_wall_nanos\": {total_wall_nanos},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let m = &r.measurement;
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"processor\": \"{}\", \
             \"best_cycles\": {}, \"retired\": {}, \"wall_nanos\": {}, \
             \"host_wall_ns\": {}, \
             \"deopts\": {}, \"recompiles\": {}, \"loop_deopts\": {}, \
             \"loop_repatches\": {}, \"reagreed\": {}, \
             \"inspection_cycles\": {}, \"static_sites\": {}, \"checksum\": {}}}{}\n",
            escape(&m.name),
            escape(&m.mode.to_string()),
            escape(&m.processor),
            m.best_cycles,
            m.retired,
            r.wall_nanos,
            r.host_wall_ns,
            m.deopts,
            m.recompiles,
            m.loop_deopts,
            m.loop_repatches,
            m.reagreed,
            m.inspection_cycles,
            m.static_sites,
            m.checksum,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Parses a file produced by [`emit`] back into its cells.
///
/// # Errors
///
/// Returns a message naming the first malformed cell line.
pub fn parse(text: &str) -> Result<Vec<CellSummary>, String> {
    parse_with_warnings(text).map(|(cells, _)| cells)
}

/// [`parse`], also reporting unknown *top-level* fields. Newer emitters
/// (e.g. one that folds serve metrics into the sweep record) may add
/// fields this reader does not know; those are ignored — the committed
/// baselines stay comparable — but surfaced as warnings so the skew is
/// visible in CI logs.
///
/// # Errors
///
/// Returns a message naming the first malformed cell line.
pub fn parse_with_warnings(text: &str) -> Result<(Vec<CellSummary>, Vec<String>), String> {
    const KNOWN_TOP_LEVEL: [&str; 4] = ["size", "jobs", "total_wall_nanos", "cells"];
    let mut cells = Vec::new();
    let mut warnings = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !(line.starts_with('{') && line.contains("\"name\"")) {
            // Not a cell line. If it introduces a top-level key we do not
            // know, warn; structural lines and known keys pass silently.
            if let Some(key) = line.strip_prefix('"').and_then(|r| r.split('"').next()) {
                if !KNOWN_TOP_LEVEL.contains(&key) {
                    warnings.push(format!("ignoring unknown top-level field \"{key}\""));
                }
            }
            continue;
        }
        let get = |key: &str| {
            field(line, key).ok_or_else(|| format!("missing field {key} in line: {line}"))
        };
        cells.push(CellSummary {
            name: get("name")?.to_string(),
            mode: get("mode")?.to_string(),
            processor: get("processor")?.to_string(),
            best_cycles: get("best_cycles")?
                .parse()
                .map_err(|e| format!("bad best_cycles in {line}: {e}"))?,
            retired: get("retired")?
                .parse()
                .map_err(|e| format!("bad retired in {line}: {e}"))?,
            wall_nanos: get("wall_nanos")?
                .parse()
                .map_err(|e| format!("bad wall_nanos in {line}: {e}"))?,
            // Tolerate files emitted before host timing repetitions
            // existed: fall back to the single wall-clock sample.
            host_wall_ns: match field(line, "host_wall_ns") {
                Some(v) => v
                    .parse()
                    .map_err(|e| format!("bad host_wall_ns in {line}: {e}"))?,
                None => get("wall_nanos")?
                    .parse()
                    .map_err(|e| format!("bad wall_nanos in {line}: {e}"))?,
            },
            // Tolerate files emitted before the adaptive counters existed.
            deopts: field(line, "deopts")
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("bad deopts in {line}: {e}"))?,
            recompiles: field(line, "recompiles")
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("bad recompiles in {line}: {e}"))?,
            // Tolerate files emitted before invalidation went per-loop.
            loop_deopts: field(line, "loop_deopts")
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("bad loop_deopts in {line}: {e}"))?,
            loop_repatches: field(line, "loop_repatches")
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("bad loop_repatches in {line}: {e}"))?,
            reagreed: field(line, "reagreed")
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("bad reagreed in {line}: {e}"))?,
            // Tolerate files emitted before the compile-time cost model.
            inspection_cycles: field(line, "inspection_cycles")
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("bad inspection_cycles in {line}: {e}"))?,
            static_sites: field(line, "static_sites")
                .map_or(Ok(0), str::parse)
                .map_err(|e| format!("bad static_sites in {line}: {e}"))?,
            checksum: get("checksum")?
                .parse()
                .map_err(|e| format!("bad checksum in {line}: {e}"))?,
        });
    }
    Ok((cells, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Measurement;
    use spf_core::PrefetchMode;
    use spf_memsim::MemStats;

    fn sample(name: &str, mode: PrefetchMode, cycles: u64) -> CellResult {
        CellResult {
            measurement: Measurement {
                name: name.to_string(),
                mode,
                processor: "Pentium 4".to_string(),
                best_cycles: cycles,
                retired: 1000,
                mem: MemStats::default(),
                compiled_fraction: 0.5,
                jit_fraction: 0.1,
                prefetch_pass_fraction: 0.2,
                prefetches_inserted: 3,
                stride_check: Default::default(),
                deopts: 0,
                recompiles: 0,
                loop_deopts: 0,
                loop_repatches: 0,
                reagreed: 0,
                inspection_cycles: 160,
                static_sites: 0,
                checksum: 42,
            },
            wall_nanos: 12_345,
            host_wall_ns: 23_456,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let results = vec![
            sample("db", PrefetchMode::Off, 100),
            sample("db", PrefetchMode::InterIntra, 80),
        ];
        let text = emit(&results, Size::Tiny, 4, 99_999);
        let cells = parse(&text).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].name, "db");
        assert_eq!(cells[0].mode, "BASELINE");
        assert_eq!(cells[1].mode, "INTER+INTRA");
        assert_eq!(cells[1].best_cycles, 80);
        assert_eq!(cells[0].wall_nanos, 12_345);
        assert_eq!(cells[0].host_wall_ns, 23_456);
        assert_eq!(cells[0].inspection_cycles, 160);
        assert_eq!(cells[0].static_sites, 0);
        assert_eq!(cells[0].checksum, 42);
    }

    #[test]
    fn parse_defaults_cost_model_fields_to_zero() {
        // A file emitted before the compile-time cost model existed.
        let text = emit(&[sample("db", PrefetchMode::Off, 100)], Size::Tiny, 1, 9)
            .replace(", \"inspection_cycles\": 160, \"static_sites\": 0", "");
        let cells = parse(&text).unwrap();
        assert_eq!(cells[0].inspection_cycles, 0);
        assert_eq!(cells[0].static_sites, 0);
    }

    #[test]
    fn parse_defaults_loop_fields_to_zero() {
        // A file emitted before invalidation went per-loop.
        let text = emit(&[sample("db", PrefetchMode::Off, 100)], Size::Tiny, 1, 9)
            .replace(", \"loop_deopts\": 0, \"loop_repatches\": 0", "");
        let cells = parse(&text).unwrap();
        assert_eq!(cells[0].loop_deopts, 0);
        assert_eq!(cells[0].loop_repatches, 0);
    }

    #[test]
    fn parse_defaults_host_wall_ns_to_wall_nanos() {
        // A file emitted before the field existed.
        let text = emit(&[sample("db", PrefetchMode::Off, 100)], Size::Tiny, 1, 9)
            .replace(", \"host_wall_ns\": 23456", "");
        let cells = parse(&text).unwrap();
        assert_eq!(cells[0].host_wall_ns, 12_345);
    }

    #[test]
    fn parse_rejects_malformed_cells() {
        let text = "{\"name\": \"db\", \"mode\": \"BASELINE\"}";
        assert!(parse(text).is_err());
    }

    #[test]
    fn unknown_top_level_fields_warn_but_parse() {
        let text = emit(&[sample("db", PrefetchMode::Off, 100)], Size::Tiny, 1, 9).replace(
            "  \"jobs\": 1,",
            "  \"jobs\": 1,\n  \"serve_summary\": \"SERVE_summary.json\",",
        );
        let (cells, warnings) = parse_with_warnings(&text).unwrap();
        assert_eq!(cells.len(), 1, "unknown fields must not drop cells");
        assert_eq!(
            warnings,
            vec!["ignoring unknown top-level field \"serve_summary\"".to_string()]
        );
        // The plain entry point still accepts the file silently.
        assert_eq!(parse(&text).unwrap(), cells);
    }

    #[test]
    fn known_top_level_fields_do_not_warn() {
        let text = emit(&[sample("db", PrefetchMode::Off, 100)], Size::Tiny, 1, 9);
        let (_, warnings) = parse_with_warnings(&text).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
    }
}
