//! Regeneration of every table and figure of the paper's evaluation (§4).
//!
//! | artifact | paper content | function |
//! |---|---|---|
//! | Table 1 / Fig. 5 | loads + LDG of `findInMemory` | [`table1_and_fig5`] |
//! | Table 2 | processor parameters | [`table2`] |
//! | Table 3 | benchmark descriptions + compiled-code % | [`ExperimentData::table3`] |
//! | Fig. 6 | speedups on the Pentium 4 | [`ExperimentData::fig6`] |
//! | Fig. 7 | speedups on the Athlon MP | [`ExperimentData::fig7`] |
//! | Fig. 8 | L1 load MPI on the Pentium 4 | [`ExperimentData::fig8`] |
//! | Fig. 9 | L2 load MPI on the Pentium 4 | [`ExperimentData::fig9`] |
//! | Fig. 10 | DTLB load MPI on the Pentium 4 | [`ExperimentData::fig10`] |
//! | Fig. 11 | compile-time overheads | [`ExperimentData::fig11`] |

use std::fmt::Write as _;

use spf_core::PrefetchMode;
use spf_memsim::ProcessorConfig;
use spf_vm::{Vm, VmConfig};
use spf_workloads::Size;

use crate::runner::{Measurement, RunPlan};

/// All measurements needed for Tables 3 and Figures 6–11.
#[derive(Clone, Debug)]
pub struct ExperimentData {
    measurements: Vec<Measurement>,
    suites: Vec<(String, String, String)>, // name, description, suite
}

/// Runs the full experiment grid: every workload × {BASELINE, INTER,
/// INTER+INTRA, ADAPTIVE, STATIC-FIRST} × {Pentium 4, Athlon MP},
/// sequentially.
pub fn collect(plan: &RunPlan) -> ExperimentData {
    collect_filtered(plan, |_| true)
}

/// Like [`collect`] but restricted to workloads accepted by `keep` (used by
/// tests and quick runs).
pub fn collect_filtered(plan: &RunPlan, keep: impl Fn(&str) -> bool) -> ExperimentData {
    collect_filtered_jobs(plan, 1, keep)
}

/// Like [`collect_filtered`] but sharded across up to `jobs` worker
/// threads ([`crate::matrix::run_cells`]); results are identical to the
/// sequential sweep for any worker count.
pub fn collect_filtered_jobs(
    plan: &RunPlan,
    jobs: usize,
    keep: impl Fn(&str) -> bool,
) -> ExperimentData {
    let results = crate::matrix::run_matrix(plan, jobs, keep);
    from_measurements(results.into_iter().map(|r| r.measurement).collect())
}

/// Assembles [`ExperimentData`] from already-collected measurements (e.g.
/// the parallel matrix runner's output), attaching Table 3 metadata from
/// the workload registry.
pub fn from_measurements(measurements: Vec<Measurement>) -> ExperimentData {
    let suites = spf_workloads::all()
        .into_iter()
        .filter(|s| measurements.iter().any(|m| m.name == s.name))
        .map(|s| {
            (
                s.name.to_string(),
                s.description.to_string(),
                s.suite.to_string(),
            )
        })
        .collect();
    ExperimentData {
        measurements,
        suites,
    }
}

impl ExperimentData {
    /// All measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn get(&self, name: &str, proc: &str, mode: PrefetchMode) -> Option<&Measurement> {
        self.measurements
            .iter()
            .find(|m| m.name == name && m.processor == proc && m.mode == mode)
    }

    /// Names of the measured workloads, in Table 3 order.
    pub fn names(&self) -> Vec<&str> {
        self.suites.iter().map(|(n, ..)| n.as_str()).collect()
    }

    fn speedup_figure(&self, proc: &str, title: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{title}");
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>14} {:>11} {:>13}",
            "program", "INTER", "INTER+INTRA", "ADAPTIVE", "STATIC-FIRST"
        );
        for name in self.names() {
            let base = self.get(name, proc, PrefetchMode::Off);
            let inter = self.get(name, proc, PrefetchMode::Inter);
            let both = self.get(name, proc, PrefetchMode::InterIntra);
            if let (Some(base), Some(inter), Some(both)) = (base, inter, both) {
                let relative = |mode| {
                    self.get(name, proc, mode).map_or("-".to_string(), |a| {
                        format!("{:>+.1}%", (a.speedup_vs(base) - 1.0) * 100.0)
                    })
                };
                let _ = writeln!(
                    s,
                    "{:<12} {:>+9.1}% {:>+13.1}% {:>11} {:>13}",
                    name,
                    (inter.speedup_vs(base) - 1.0) * 100.0,
                    (both.speedup_vs(base) - 1.0) * 100.0,
                    relative(PrefetchMode::Adaptive),
                    relative(PrefetchMode::StaticFirst)
                );
            }
        }
        s
    }

    /// Figure 6: speedup ratios on the Pentium 4.
    pub fn fig6(&self) -> String {
        self.speedup_figure(
            "Pentium 4",
            "Figure 6: speedup ratios on the Pentium 4 (baseline = no stride prefetching)",
        )
    }

    /// Figure 7: speedup ratios on the Athlon MP.
    pub fn fig7(&self) -> String {
        self.speedup_figure(
            "Athlon MP",
            "Figure 7: speedup ratios on the Athlon MP (baseline = no stride prefetching)",
        )
    }

    fn mpi_figure(&self, title: &str, metric: impl Fn(&Measurement) -> f64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{title}");
        let _ = writeln!(
            s,
            "{:<12} {:>12} {:>12}",
            "program", "BASELINE", "INTER+INTRA"
        );
        for name in self.names() {
            let base = self.get(name, "Pentium 4", PrefetchMode::Off);
            let both = self.get(name, "Pentium 4", PrefetchMode::InterIntra);
            if let (Some(base), Some(both)) = (base, both) {
                let _ = writeln!(
                    s,
                    "{:<12} {:>12.5} {:>12.5}",
                    name,
                    metric(base),
                    metric(both)
                );
            }
        }
        s
    }

    /// Figure 8: L1 cache load MPIs on the Pentium 4.
    pub fn fig8(&self) -> String {
        self.mpi_figure("Figure 8: L1 cache load MPIs on the Pentium 4", |m| {
            m.mem.l1_load_mpi(m.retired)
        })
    }

    /// Figure 9: L2 cache load MPIs on the Pentium 4.
    pub fn fig9(&self) -> String {
        self.mpi_figure("Figure 9: L2 cache load MPIs on the Pentium 4", |m| {
            m.mem.l2_load_mpi(m.retired)
        })
    }

    /// Figure 10: DTLB load MPIs on the Pentium 4.
    pub fn fig10(&self) -> String {
        self.mpi_figure("Figure 10: DTLB load MPIs on the Pentium 4", |m| {
            m.mem.dtlb_load_mpi(m.retired)
        })
    }

    /// Figure 11: prefetch-pass compile time relative to total JIT
    /// compilation time, and JIT time relative to total execution (Pentium
    /// 4, INTER+INTRA, warm-up phase).
    pub fn fig11(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 11: compilation time for prefetching and total JIT compilation time"
        );
        let _ = writeln!(
            s,
            "{:<12} {:>22} {:>22}",
            "program", "prefetch-pass/JIT (%)", "JIT/total time (%)"
        );
        for name in self.names() {
            if let Some(m) = self.get(name, "Pentium 4", PrefetchMode::InterIntra) {
                let _ = writeln!(
                    s,
                    "{:<12} {:>21.2}% {:>21.2}%",
                    name,
                    m.prefetch_pass_fraction * 100.0,
                    m.jit_fraction * 100.0
                );
            }
        }
        s
    }

    /// Table 3: benchmark descriptions and the fraction of execution time
    /// spent in compiled code (Pentium 4, baseline).
    pub fn table3(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Table 3: benchmarks (SPECjvm98 and JavaGrande v2.0 Section 3)"
        );
        let _ = writeln!(
            s,
            "{:<12} {:<36} {:<11} {:>16}",
            "program", "description", "suite", "compiled code %"
        );
        for (name, desc, suite) in &self.suites {
            if let Some(m) = self.get(name, "Pentium 4", PrefetchMode::Off) {
                let _ = writeln!(
                    s,
                    "{:<12} {:<36} {:<11} {:>15.1}%",
                    name,
                    desc,
                    suite,
                    m.compiled_fraction * 100.0
                );
            }
        }
        s
    }

    /// Static-vs-inspected stride cross-check, one row per (workload,
    /// analysing mode) on the Pentium 4: how many LDG candidates the
    /// affine analysis proved a stride for, how many object inspection
    /// derived one for, and how often they agree where both speak. Not a
    /// paper artifact — it quantifies the paper's premise that inspection
    /// covers access patterns static analysis cannot, and (per mode)
    /// where STATIC-FIRST's proofs relieve the inspector. BASELINE runs
    /// no analysis and is omitted.
    pub fn stride_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Stride sources: statically proven vs derived by object inspection"
        );
        let _ = writeln!(
            s,
            "{:<12} {:<12} {:>7} {:>10} {:>6} {:>9} {:>12} {:>9} {:>7}",
            "program",
            "mode",
            "static",
            "inspected",
            "agree",
            "disagree",
            "static-only",
            "dyn-only",
            "agree%"
        );
        for name in self.names() {
            for mode in [
                PrefetchMode::Inter,
                PrefetchMode::InterIntra,
                PrefetchMode::Adaptive,
                PrefetchMode::StaticFirst,
            ] {
                if let Some(m) = self.get(name, "Pentium 4", mode) {
                    let c = &m.stride_check;
                    let rate = match c.agreement_rate() {
                        Some(r) => format!("{:.0}%", r * 100.0),
                        None => "-".to_string(),
                    };
                    let _ = writeln!(
                        s,
                        "{:<12} {:<12} {:>7} {:>10} {:>6} {:>9} {:>12} {:>9} {:>7}",
                        name,
                        m.mode.to_string(),
                        c.static_total(),
                        c.inspected_total(),
                        c.agree,
                        c.disagree,
                        c.static_only,
                        c.dynamic_only,
                        rate
                    );
                }
            }
        }
        s
    }

    /// Compile-time cost model per workload (Pentium 4): deterministic
    /// inspection cycles under INTER+INTRA, ADAPTIVE, and STATIC-FIRST,
    /// plus the statically proved sites STATIC-FIRST excluded from the
    /// record set. Not a paper artifact — it quantifies what static-first
    /// compilation saves at compile time.
    pub fn static_first_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Static-first compile-time cost: inspection cycles by mode"
        );
        let _ = writeln!(
            s,
            "{:<12} {:>14} {:>12} {:>14} {:>13} {:>8}",
            "program", "INTER+INTRA", "ADAPTIVE", "STATIC-FIRST", "static-sites", "saved%"
        );
        for name in self.names() {
            let ii = self.get(name, "Pentium 4", PrefetchMode::InterIntra);
            let ad = self.get(name, "Pentium 4", PrefetchMode::Adaptive);
            let sf = self.get(name, "Pentium 4", PrefetchMode::StaticFirst);
            if let (Some(ii), Some(ad), Some(sf)) = (ii, ad, sf) {
                let saved = if ii.inspection_cycles == 0 {
                    "-".to_string()
                } else {
                    format!(
                        "{:.0}%",
                        (1.0 - sf.inspection_cycles as f64 / ii.inspection_cycles as f64) * 100.0
                    )
                };
                let _ = writeln!(
                    s,
                    "{:<12} {:>14} {:>12} {:>14} {:>13} {:>8}",
                    name,
                    ii.inspection_cycles,
                    ad.inspection_cycles,
                    sf.inspection_cycles,
                    sf.static_sites,
                    saved
                );
            }
        }
        s
    }

    /// Adaptive-reprofiling counters per workload (Pentium 4, ADAPTIVE):
    /// how often compiled loops had their prefetch sites invalidated and
    /// patched to no-ops, how often those loops were repatched through
    /// tier-2 re-entry, how often the whole method was recompiled, and how
    /// often re-inspection re-agreed on prefetchable strides. Not a paper
    /// artifact — it characterizes the guard machinery this reproduction
    /// adds on top of the paper's one-shot inspection. The `deopts` column
    /// stays for continuity with older runs; it is always 0 now that
    /// invalidation is per-loop.
    pub fn adaptive_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Adaptive reprofiling: per-loop invalidations, repatches, and re-agreements"
        );
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>9} {:>9} {:>12} {:>10}",
            "program", "deopts", "loop-inv", "loop-rep", "recompiles", "reagreed"
        );
        for name in self.names() {
            if let Some(m) = self.get(name, "Pentium 4", PrefetchMode::Adaptive) {
                let _ = writeln!(
                    s,
                    "{:<12} {:>8} {:>9} {:>9} {:>12} {:>10}",
                    name, m.deopts, m.loop_deopts, m.loop_repatches, m.recompiles, m.reagreed
                );
            }
        }
        s
    }
}

/// Table 2: parameters related to prefetching on the two processors.
pub fn table2() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2: prefetch-related processor parameters");
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>13} {:>8} {:>13} {:>13}",
        "Processor", "L1 (KB)", "L1 line (B)", "L2 (KB)", "L2 line (B)", "#DTLB entries"
    );
    for cfg in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
        let _ = writeln!(s, "{}", cfg.table2_row());
    }
    s
}

/// Table 1 + Figure 5: the load instructions of jess's `findInMemory` and
/// its load dependence graph, regenerated by compiling the method with live
/// heap data and rendering the per-loop report.
pub fn table1_and_fig5() -> String {
    let spec = spf_workloads::all()
        .into_iter()
        .find(|s| s.name == "jess")
        .expect("jess workload");
    let built = (spec.build)(Size::Tiny);
    let mut vm = Vm::new(
        built.program,
        VmConfig {
            heap_bytes: built.heap_bytes,
            ..VmConfig::default()
        },
        ProcessorConfig::pentium4(),
    );
    vm.call(built.entry, &[]).expect("jess runs");
    vm.call(built.entry, &[]).expect("jess runs");
    let report = vm
        .reports()
        .iter()
        .find(|r| r.method == "findInMemory")
        .expect("findInMemory compiled");
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1 / Figure 5: load dependence graph of findInMemory()"
    );
    for lr in &report.loops {
        let _ = writeln!(
            s,
            "loop at {} (depth {}): {} nodes, {} edges",
            lr.header, lr.depth, lr.ldg_nodes, lr.ldg_edges
        );
        s.push_str(&lr.ldg_text);
        for p in &lr.prefetches {
            let _ = writeln!(s, "  generated: {} for {} [{}]", p.kind, p.anchor, p.mapped);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        assert!(t.contains("Pentium 4"), "{t}");
        assert!(t.contains("Athlon MP"), "{t}");
        // P4 row: 8 KB L1, 64 B line, 256 KB L2, 128 B line, 64 entries.
        let p4_line = t.lines().find(|l| l.starts_with("Pentium 4")).unwrap();
        for v in ["8", "64", "256", "128"] {
            assert!(p4_line.contains(v), "{p4_line}");
        }
    }

    #[test]
    fn table1_mentions_the_motivating_loads() {
        let t = table1_and_fig5();
        assert!(t.contains("getfield"), "{t}");
        assert!(t.contains("->"), "ldg edges rendered: {t}");
        assert!(t.contains("spec-load"), "Figure 4 code generated: {t}");
    }

    #[test]
    fn figures_render_for_a_small_grid() {
        let plan = RunPlan {
            size: Size::Tiny,
            warmup_runs: 2,
            measured_runs: 1,
            timing_runs: 1,
        };
        let data = collect_filtered(&plan, |n| n == "db" || n == "compress");
        let f6 = data.fig6();
        assert!(f6.contains("db"), "{f6}");
        assert!(f6.contains("compress"), "{f6}");
        let f8 = data.fig8();
        assert!(f8.contains("BASELINE"), "{f8}");
        let f11 = data.fig11();
        assert!(f11.contains("%"), "{f11}");
        let t3 = data.table3();
        assert!(t3.contains("Memory resident database"), "{t3}");
        // db's checksums agree across all ten configurations.
        let db: Vec<_> = data
            .measurements()
            .iter()
            .filter(|m| m.name == "db")
            .collect();
        assert_eq!(db.len(), 10);
        assert!(db.windows(2).all(|w| w[0].checksum == w[1].checksum));
        let at = data.adaptive_table();
        assert!(at.contains("db"), "{at}");
        assert!(at.contains("recompiles"), "{at}");
        // The stride-sources table breaks down per analysing mode.
        let st = data.stride_table();
        assert!(st.contains("STATIC-FIRST"), "{st}");
        assert!(st.contains("INTER+INTRA"), "{st}");
        // The cost-model table shows STATIC-FIRST below INTER+INTRA on a
        // workload with statically provable strides.
        let ct = data.static_first_table();
        assert!(ct.contains("saved%"), "{ct}");
        let sf = |name: &str, mode| data.get(name, "Pentium 4", mode).unwrap();
        use PrefetchMode::{InterIntra, StaticFirst};
        assert!(
            sf("compress", StaticFirst).inspection_cycles
                < sf("compress", InterIntra).inspection_cycles,
            "{ct}"
        );
        assert!(sf("compress", StaticFirst).static_sites > 0, "{ct}");
        assert_eq!(sf("compress", InterIntra).static_sites, 0);
    }
}
