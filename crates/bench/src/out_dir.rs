//! `--out-dir` support shared by the artifact-writing binaries.
//!
//! The `figures` and `spf-lint` binaries write their artifacts
//! (`BENCH_matrix.json`, `TRACE_summary.jsonl`, `STRIDE_agreement.jsonl`)
//! to the working directory by default; `--out-dir DIR` redirects every
//! *relative* artifact path into `DIR` without renaming it. Absolute
//! paths are left untouched so explicit `--matrix-out /tmp/x.json`-style
//! overrides keep working alongside the flag.

use std::path::Path;

/// Joins `path` onto `dir` unless `path` is absolute.
pub fn join(dir: &str, path: &str) -> String {
    if Path::new(path).is_absolute() {
        path.to_string()
    } else {
        Path::new(dir).join(path).to_string_lossy().into_owned()
    }
}

/// Creates the parent directory of `path` if it does not exist, so a
/// subsequent `std::fs::write(path, ..)` cannot fail on a missing
/// `--out-dir` target.
pub fn ensure_parent(path: &str) {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_respects_absolute_paths() {
        assert_eq!(join("out", "BENCH_matrix.json"), "out/BENCH_matrix.json");
        assert_eq!(join("out", "/tmp/x.json"), "/tmp/x.json");
    }

    #[test]
    fn ensure_parent_creates_directories() {
        let dir = std::env::temp_dir().join("spf-out-dir-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("x.json");
        ensure_parent(path.to_str().unwrap());
        assert!(path.parent().unwrap().is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
