//! Quick shape check: db under all three configurations on both processors.

use spf_bench::{run_workload, RunPlan};
use spf_core::PrefetchOptions;
use spf_memsim::ProcessorConfig;
use spf_workloads::Size;

fn main() {
    let size = std::env::args()
        .nth(1)
        .map(|s| match s.as_str() {
            "tiny" => Size::Tiny,
            "small" => Size::Small,
            _ => Size::Full,
        })
        .unwrap_or(Size::Small);
    let plan = RunPlan {
        size,
        ..RunPlan::default()
    };
    for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
        for spec in spf_workloads::all() {
            let base = run_workload(&spec, &PrefetchOptions::off(), &proc, &plan);
            let inter = run_workload(&spec, &PrefetchOptions::inter(), &proc, &plan);
            let both = run_workload(&spec, &PrefetchOptions::inter_intra(), &proc, &plan);
            println!(
                "{:<10} {:<10} base={:>12} INTER={:>6.2}% INTER+INTRA={:>6.2}%  (pf={} l1mpi {:.4}->{:.4} dtlbmpi {:.5}->{:.5})",
                proc.name,
                spec.name,
                base.best_cycles,
                (inter.speedup_vs(&base) - 1.0) * 100.0,
                (both.speedup_vs(&base) - 1.0) * 100.0,
                both.prefetches_inserted,
                base.mem.l1_load_mpi(base.retired),
                both.mem.l1_load_mpi(both.retired),
                base.mem.dtlb_load_mpi(base.retired),
                both.mem.dtlb_load_mpi(both.retired),
            );
        }
    }
}
