//! Compares host throughput between two `BENCH_matrix.json` files.
//!
//! ```text
//! cargo run -p spf-bench --bin host_check -- HOST_baseline.json BENCH_matrix.json
//! cargo run -p spf-bench --bin host_check -- old.json new.json --threshold 1.5
//! ```
//!
//! Prints each common cell's wall-clock regression percentage (worst
//! first), then sums `host_wall_ns` (falling back to `wall_nanos` for
//! files emitted before timing repetitions existed) over the cells
//! present in both files and prints the ratio `new / old`. Exit code 1 if the ratio
//! exceeds `--threshold` (default 1.5) — i.e. the new sweep is more than
//! `threshold`× slower than the recorded baseline — or if no cells match;
//! 0 otherwise.
//!
//! This is a *soft* throughput tripwire, not a precision benchmark: CI
//! hosts vary in speed and load, so the default threshold is deliberately
//! loose. It exists to catch order-of-magnitude interpreter regressions
//! (a lost superinstruction pass, an accidental debug build), while
//! simulated-number regressions are `bench_diff`'s job.

use std::io::Write as _;
use std::process::ExitCode;

use spf_bench::matrix_json::{self, CellSummary};

fn load(path: &str) -> Result<Vec<CellSummary>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (cells, warnings) =
        matrix_json::parse_with_warnings(&text).map_err(|e| format!("{path}: {e}"))?;
    for w in warnings {
        eprintln!("host_check: {path}: {w}");
    }
    Ok(cells)
}

fn main() -> ExitCode {
    let mut threshold = 1.5f64;
    let mut paths: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("host_check: --threshold needs a number");
                    return ExitCode::FAILURE;
                };
                threshold = v;
            }
            _ => paths.push(a),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: host_check OLD.json NEW.json [--threshold RATIO]");
        return ExitCode::FAILURE;
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("host_check: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut matched = 0usize;
    let (mut old_total, mut new_total) = (0u128, 0u128);
    // (regression %, description) per matched cell, worst first, so the
    // CI log names the offenders instead of a bare pass/fail verdict.
    let mut per_cell: Vec<(f64, String)> = Vec::new();
    for o in &old {
        let Some(n) = new.iter().find(|n| n.key() == o.key()) else {
            continue;
        };
        matched += 1;
        old_total += o.host_wall_ns;
        new_total += n.host_wall_ns;
        if o.host_wall_ns > 0 {
            let delta = (n.host_wall_ns as f64 / o.host_wall_ns as f64 - 1.0) * 100.0;
            per_cell.push((
                delta,
                format!(
                    "  {:<12} {:<12} {:<10} {:>10.2} ms -> {:>10.2} ms  {:>+7.1}%",
                    o.name,
                    o.mode,
                    o.processor,
                    o.host_wall_ns as f64 / 1e6,
                    n.host_wall_ns as f64 / 1e6,
                    delta
                ),
            ));
        }
    }
    let mut out = std::io::stdout().lock();
    if matched == 0 || old_total == 0 {
        let _ = writeln!(out, "host_check: no comparable cells");
        return ExitCode::FAILURE;
    }
    per_cell.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, line) in &per_cell {
        let _ = writeln!(out, "{line}");
    }
    let ratio = new_total as f64 / old_total as f64;
    let verdict = if ratio > threshold { "FAIL" } else { "ok" };
    let _ = writeln!(
        out,
        "host_check: {matched} cell(s), {:.1} ms -> {:.1} ms, ratio {ratio:.2} \
         (threshold {threshold:.2}): {verdict}",
        old_total as f64 / 1e6,
        new_total as f64 / 1e6,
    );
    if ratio > threshold {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
