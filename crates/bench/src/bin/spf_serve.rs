//! Multi-tenant serving simulation driver.
//!
//! ```text
//! cargo run --release -p spf-bench --bin spf-serve
//! cargo run --release -p spf-bench --bin spf-serve -- --tenants 200 --requests 1000
//! cargo run --release -p spf-bench --bin spf-serve -- --jobs 1 --verify-jobs 4
//! ```
//!
//! Runs the `spf-serve` fleet simulation — hundreds of tenant VMs over
//! sharded heaps, a background compilation queue, and a bounded shared
//! code cache — once per prefetch mode (BASELINE, INTER, INTER+INTRA,
//! ADAPTIVE, STATIC-FIRST), prints the latency table, and writes
//! `SERVE_summary.json`. STATIC-FIRST exercises the compile-cost-aware
//! queue estimates: statically proved sites skip object inspection, so
//! its scheduled compile latencies come in below the legacy modes'.
//!
//! The simulation is bit-identical across `--jobs` values; passing
//! `--verify-jobs N` re-runs the whole sweep with `N` host workers and
//! fails (exit 1) if any number differs — the serving analogue of the
//! matrix's `--verify-serial`. CI additionally byte-compares the emitted
//! file across two `--jobs` runs with `cmp`.
//!
//! `--chaos` additionally runs each mode a second time under the seeded
//! fault plan (GC storms, compile stalls, cache squeezes, traffic
//! bursts), checks the recovery invariants against the fault-free twin,
//! appends a `chaos` section to the summary, and with
//! `--fault-events-out` writes the chaos event stream as
//! `FAULT_events.jsonl`. A failed recovery invariant is exit 1.

use std::process::ExitCode;

use spf_bench::{matrix, out_dir};
use spf_core::PrefetchOptions;
use spf_memsim::ProcessorConfig;
use spf_serve::{
    faults, report, sim, traffic, ChaosConfig, ChaosRow, ModeReport, ServeConfig, ServeSummary,
    TrafficConfig,
};
use spf_trace::{export, TraceEvent};
use spf_workloads::Size;

struct Args {
    cfg: ServeConfig,
    proc: ProcessorConfig,
    jobs: usize,
    verify_jobs: Option<usize>,
    out: Option<String>,
    events_out: Option<String>,
    chaos: Option<ChaosConfig>,
    fault_events_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ServeConfig::default(),
        proc: ProcessorConfig::pentium4(),
        jobs: matrix::default_jobs(),
        verify_jobs: None,
        out: Some("SERVE_summary.json".to_string()),
        events_out: None,
        chaos: None,
        fault_events_out: None,
    };
    let mut dir_flag: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{name} needs a non-negative integer, got {v:?}"))
        };
        match a.as_str() {
            "--tenants" => args.cfg.tenants = num("--tenants")?.max(1) as usize,
            "--requests" => args.cfg.requests = num("--requests")?.max(1) as u32,
            "--mean-interarrival" => args.cfg.mean_interarrival = num("--mean-interarrival")?,
            "--seed" => args.cfg.seed = num("--seed")?,
            "--slot-cycles" => args.cfg.slot_cycles = num("--slot-cycles")?.max(1),
            "--compile-workers" => {
                args.cfg.compile_workers = num("--compile-workers")?.max(1) as usize;
            }
            "--cache-instrs" => args.cfg.cache_capacity_instrs = num("--cache-instrs")?,
            "--jobs" => args.jobs = num("--jobs")?.max(1) as usize,
            "--verify-jobs" => args.verify_jobs = Some(num("--verify-jobs")?.max(1) as usize),
            "--processor" => {
                let v = it.next().ok_or("--processor needs a name")?;
                args.proc = match v.as_str() {
                    "pentium4" | "p4" => ProcessorConfig::pentium4(),
                    "athlon" | "athlonmp" => ProcessorConfig::athlon_mp(),
                    other => return Err(format!("unknown processor {other:?}")),
                };
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path (or - to disable)")?;
                args.out = if v == "-" { None } else { Some(v) };
            }
            "--events-out" => {
                args.events_out = Some(it.next().ok_or("--events-out needs a path")?);
            }
            "--chaos" => {
                args.chaos.get_or_insert_with(ChaosConfig::default);
            }
            "--chaos-seed" => {
                args.chaos.get_or_insert_with(ChaosConfig::default).seed = num("--chaos-seed")?;
            }
            "--fault-events-out" => {
                args.fault_events_out = Some(it.next().ok_or("--fault-events-out needs a path")?);
            }
            "--out-dir" => {
                dir_flag = Some(it.next().ok_or("--out-dir needs a directory")?);
            }
            "tiny" => args.cfg.size = Size::Tiny,
            "small" => args.cfg.size = Size::Small,
            "full" => args.cfg.size = Size::Full,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if let Some(dir) = &dir_flag {
        args.out = args.out.map(|p| out_dir::join(dir, &p));
        args.events_out = args.events_out.map(|p| out_dir::join(dir, &p));
        args.fault_events_out = args.fault_events_out.map(|p| out_dir::join(dir, &p));
    }
    if args.fault_events_out.is_some() && args.chaos.is_none() {
        return Err("--fault-events-out requires --chaos".to_string());
    }
    Ok(args)
}

/// The five matrix modes, in the matrix's canonical order.
fn modes() -> [PrefetchOptions; 5] {
    [
        PrefetchOptions::off(),
        PrefetchOptions::inter(),
        PrefetchOptions::inter_intra(),
        PrefetchOptions::adaptive(),
        PrefetchOptions::static_first(),
    ]
}

/// Events emitted only by the chaos machinery, for `FAULT_events.jsonl`.
fn chaos_events(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::FaultInjected { .. }
                    | TraceEvent::RequestShed { .. }
                    | TraceEvent::CompileRetried { .. }
                    | TraceEvent::GuardRearmed { .. }
            )
        })
        .cloned()
        .collect()
}

fn sweep(args: &Args, jobs: usize) -> Result<(ServeSummary, String, String), String> {
    let mut rows = Vec::new();
    let mut chaos_rows = Vec::new();
    let mut events_text = String::new();
    let mut fault_events_text = String::new();
    // The base stream and fault plan are mode-independent: recompute them
    // once, exactly as `sim::run` does internally.
    let base = traffic::generate(&TrafficConfig {
        tenants: args.cfg.tenants,
        requests: args.cfg.requests,
        mean_interarrival: args.cfg.mean_interarrival,
        seed: args.cfg.seed,
    });
    let horizon = base.last().map_or(args.cfg.slot_cycles, |r| r.arrival);
    for opts in modes() {
        eprintln!(
            "serve: {} tenants x {} requests, mode {}, {} job(s)...",
            args.cfg.tenants, args.cfg.requests, opts.mode, jobs
        );
        let out = sim::run(&args.cfg, &opts, &args.proc, jobs);
        if args.events_out.is_some() {
            events_text.push_str(&export::events_jsonl(&out.events, None));
        }
        rows.push(ModeReport::from_outcome(&opts.mode.to_string(), &out));
        if let Some(chaos) = &args.chaos {
            eprintln!("serve: mode {} again, under the fault plan...", opts.mode);
            let chaos_cfg = ServeConfig {
                chaos: Some(*chaos),
                ..args.cfg
            };
            let fault = sim::run(&chaos_cfg, &opts, &args.proc, jobs);
            if args.fault_events_out.is_some() {
                fault_events_text
                    .push_str(&export::events_jsonl(&chaos_events(&fault.events), None));
            }
            let plan = faults::generate(chaos, args.cfg.tenants, horizon, args.cfg.slot_cycles);
            let recovery =
                faults::verify_recovery(&plan, chaos, args.cfg.slot_cycles, &base, &fault, &out)
                    .map_err(|e| format!("mode {}: recovery invariant failed: {e}", opts.mode))?;
            let served = ModeReport::from_outcome(&opts.mode.to_string(), &fault);
            chaos_rows.push(ChaosRow {
                mode: opts.mode.to_string(),
                faults: fault.faults,
                shed: fault.shed.len() as u64,
                retries: fault.retries,
                rearms: fault.rearms,
                stranded_final: fault.stranded_final,
                completed: served.completed,
                p99: served.p99,
                recovery_at: recovery.recovery_at,
                post_requests: recovery.post_requests,
                post_p99_ratio_milli: recovery.post_p99_ratio_milli,
            });
        }
    }
    let summary = ServeSummary {
        processor: args.proc.name.clone(),
        tenants: args.cfg.tenants as u64,
        requests: u64::from(args.cfg.requests),
        mean_interarrival: args.cfg.mean_interarrival,
        seed: args.cfg.seed,
        slot_cycles: args.cfg.slot_cycles,
        compile_workers: args.cfg.compile_workers as u64,
        cache_capacity_instrs: args.cfg.cache_capacity_instrs,
        modes: rows,
        chaos: chaos_rows,
    };
    Ok((summary, events_text, fault_events_text))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: spf-serve [tiny|small|full] [--tenants N] [--requests N] \
                 [--mean-interarrival CYCLES] [--seed N] [--slot-cycles N] \
                 [--compile-workers N] [--cache-instrs N] [--processor pentium4|athlonmp] \
                 [--jobs N] [--verify-jobs N] [--out PATH|-] [--events-out PATH] \
                 [--chaos] [--chaos-seed N] [--fault-events-out PATH] [--out-dir DIR]"
            );
            return ExitCode::FAILURE;
        }
    };
    let (summary, events_text, fault_events_text) = match sweep(&args, args.jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report::render(&summary));

    // Checksums must agree across modes: prefetching may only change
    // timing, never results.
    let first = summary.modes.first().map(|m| m.checksum);
    if summary.modes.iter().any(|m| Some(m.checksum) != first) {
        eprintln!("serve: FLEET CHECKSUM DIVERGED ACROSS MODES");
        return ExitCode::FAILURE;
    }

    if let Some(verify_jobs) = args.verify_jobs {
        eprintln!("serve: verifying determinism with {verify_jobs} job(s)...");
        let (again, _, fault_events_again) = match sweep(&args, verify_jobs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve: {e}");
                return ExitCode::FAILURE;
            }
        };
        if fault_events_again != fault_events_text {
            eprintln!(
                "serve: FAULT EVENT STREAM differs between --jobs {} and --jobs {verify_jobs}",
                args.jobs
            );
            return ExitCode::FAILURE;
        }
        if again != summary {
            eprintln!(
                "serve: MISMATCH between --jobs {} and --jobs {verify_jobs}:",
                args.jobs
            );
            for (a, b) in summary.modes.iter().zip(&again.modes) {
                if a != b {
                    eprintln!("  {}: {a:?}\n  != {b:?}", a.mode);
                }
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "serve: bit-identical across jobs ({} == {verify_jobs})",
            args.jobs
        );
    }

    if let Some(path) = &args.out {
        out_dir::ensure_parent(path);
        match std::fs::write(path, report::emit(&summary)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.events_out {
        out_dir::ensure_parent(path);
        match std::fs::write(path, events_text) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.fault_events_out {
        out_dir::ensure_parent(path);
        match std::fs::write(path, fault_events_text) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
