//! `spf-lint` — runs the static analyses over every registry workload.
//!
//! ```text
//! cargo run --release -p spf-bench --bin spf-lint                 # full size
//! cargo run --release -p spf-bench --bin spf-lint -- tiny         # quicker
//! cargo run --release -p spf-bench --bin spf-lint -- tiny db      # one workload
//! cargo run -p spf-bench --bin spf-lint -- tiny --agreement-out -
//! cargo run -p spf-bench --bin spf-lint -- tiny --provenance
//! ```
//!
//! For each workload the original (pre-JIT) method bodies are checked
//! against the structural verifier ([`spf_ir::verify::verify_all`]) and the
//! full static lint. Then, for every prefetch mode × simulated processor,
//! the workload is warmed up so the JIT compiles its hot methods, and each
//! *compiled* body — after inlining, unrolling, DCE, and prefetch insertion
//! — is linted again with the guarded-policy discipline resolved for that
//! processor. Under the modes that carry adaptive guards (ADAPTIVE,
//! STATIC-FIRST) every compilation *generation* is linted
//! (deoptimized-and-recompiled bodies included), not just the bodies still
//! installed. Each generation also runs the provenance lint
//! ([`spf_analysis::provenance::check`]): every emitted prefetch site is
//! tagged static/dynamic/hybrid and checked for wasted inspection budget,
//! proof-vs-installed-stride soundness, and speculation-safety of
//! statically-derived addresses. Verifier errors go to **stderr** (before
//! any lint output for the same body); lint and provenance findings go to
//! stdout. Any violation makes the process exit nonzero.
//!
//! Unless disabled with `--agreement-out -`, the static-vs-inspected stride
//! cross-check totals of each (workload, processor, mode) cell are written
//! as JSON lines to `STRIDE_agreement.jsonl`. With `--provenance`, per-cell
//! provenance tallies are additionally written to `STRIDE_provenance.jsonl`.
//! `--out-dir DIR` redirects every relative artifact path into `DIR`
//! (created if missing).

use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;

use spf_analysis::{lint, LintConfig, Provenance, ProvenanceConfig, SiteProvenance};
use spf_core::{PrefetchOptions, StrideCrossCheck};
use spf_memsim::ProcessorConfig;
use spf_vm::{Vm, VmConfig};
use spf_workloads::Size;

struct Args {
    size: Size,
    only: Option<String>,
    agreement_out: Option<String>,
    provenance_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: Size::Full,
        only: None,
        agreement_out: Some("STRIDE_agreement.jsonl".to_string()),
        provenance_out: None,
    };
    let mut out_dir: Option<String> = None;
    let mut it = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--agreement-out" => {
                let v = it
                    .next()
                    .ok_or("--agreement-out needs a path (or - to disable)")?;
                args.agreement_out = if v == "-" { None } else { Some(v) };
            }
            "--provenance" => {
                args.provenance_out = Some("STRIDE_provenance.jsonl".to_string());
            }
            "--provenance-out" => {
                let v = it
                    .next()
                    .ok_or("--provenance-out needs a path (or - to disable)")?;
                args.provenance_out = if v == "-" { None } else { Some(v) };
            }
            "--out-dir" => {
                out_dir = Some(it.next().ok_or("--out-dir needs a directory")?);
            }
            _ => positional.push(a),
        }
    }
    if let Some(dir) = &out_dir {
        args.agreement_out = args
            .agreement_out
            .map(|p| spf_bench::out_dir::join(dir, &p));
        args.provenance_out = args
            .provenance_out
            .map(|p| spf_bench::out_dir::join(dir, &p));
    }
    if let Some(s) = positional.first() {
        args.size = match s.as_str() {
            "tiny" => Size::Tiny,
            "small" => Size::Small,
            _ => Size::Full,
        };
    }
    args.only = positional.get(1).cloned();
    if let Some(only) = &args.only {
        if !spf_workloads::all().iter().any(|s| s.name == *only) {
            let names: Vec<_> = spf_workloads::all().iter().map(|s| s.name).collect();
            return Err(format!(
                "unknown workload {only:?}; known workloads: {}",
                names.join(", ")
            ));
        }
    }
    Ok(args)
}

/// Prints to stdout without panicking when the pipe closes early.
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(text.as_bytes());
    let _ = out.write_all(b"\n");
}

/// Checks a workload's original (pre-optimization) method bodies: the
/// structural verifier plus the full lint with no policy constraint.
/// Verifier errors are reported on stderr, before any lint findings for
/// the same body. Returns the number of violations.
fn check_originals(name: &str, program: &spf_ir::program::Program) -> usize {
    let mut violations = 0;
    for mid in program.method_ids() {
        let func = program.method(mid).func();
        for e in spf_ir::verify::verify_all(program, func) {
            violations += 1;
            eprintln!("{name}: {}: verify: {e}", func.name());
        }
        for f in lint(func, &LintConfig::default()) {
            violations += 1;
            emit(&format!("{name}: {}: lint: {f}", func.name()));
        }
    }
    violations
}

/// Per-cell provenance tallies: how many emitted prefetch sites carry each
/// tag across all compiled generations of the cell.
#[derive(Clone, Copy, Default)]
struct ProvenanceTally {
    r#static: usize,
    dynamic: usize,
    hybrid: usize,
}

impl ProvenanceTally {
    fn add(&mut self, records: &[SiteProvenance]) {
        for r in records {
            match r.provenance {
                Provenance::Static => self.r#static += 1,
                Provenance::Dynamic => self.dynamic += 1,
                Provenance::Hybrid => self.hybrid += 1,
            }
        }
    }
}

/// Warms one (workload, processor, mode) cell until the JIT has compiled
/// its hot methods, lints every compiled body under the policy discipline
/// resolved for `proc`, and runs the provenance lint over every
/// compilation generation. Returns the violation count, the cell's stride
/// cross-check totals, the compiled-generation count, and the provenance
/// tallies.
fn check_cell(
    spec: &spf_workloads::WorkloadSpec,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    size: Size,
) -> (usize, StrideCrossCheck, usize, ProvenanceTally) {
    let built = (spec.build)(size);
    let mut vm = Vm::new(
        built.program,
        VmConfig {
            heap_bytes: built.heap_bytes,
            prefetch: options.clone(),
            compile_threshold: built.compile_threshold,
            ..VmConfig::default()
        },
        proc.clone(),
    );
    let mut checksum = 0;
    for _ in 0..2 {
        checksum = vm
            .call(built.entry, &[])
            .unwrap_or_else(|e| panic!("{} faulted: {e}", spec.name))
            .expect("entry returns a checksum")
            .as_i32();
    }
    if let Some(expected) = built.expected {
        assert_eq!(checksum, expected, "{} checksum", spec.name);
    }

    let policy = options
        .guarded_policy
        .lint_check(proc.swpf_drops_on_tlb_miss);
    let config = LintConfig { policy };
    let pcfg = ProvenanceConfig {
        static_first: options.mode.static_first(),
    };
    let mut violations = 0;
    let mut compiled = 0;
    let mut tally = ProvenanceTally::default();
    // Every compilation the VM ever installed: under the adaptive-guard
    // modes this includes deoptimized-and-recompiled generations, not
    // just the bodies currently live. Reports are paired with bodies by
    // (method name, generation) — the history and the report list are not
    // positionally aligned when bodies are installed out of band.
    for (_mid, generation, func) in vm.compiled_generations() {
        compiled += 1;
        // Verifier errors go to stderr, before this body's lint output.
        for e in spf_ir::verify::verify_all(vm.program(), func) {
            violations += 1;
            eprintln!(
                "{}/{}/{}: {} g{generation}: verify: {e}",
                spec.name,
                options.mode,
                proc.name,
                func.name()
            );
        }
        for f in lint(func, &config) {
            violations += 1;
            emit(&format!(
                "{}/{}/{}: {} g{generation}: lint: {f}",
                spec.name,
                options.mode,
                proc.name,
                func.name()
            ));
        }
        let records: Vec<SiteProvenance> = vm
            .reports()
            .iter()
            .filter(|r| r.method == func.name() && r.generation == generation)
            .flat_map(|r| r.provenance_records().cloned())
            .collect();
        tally.add(&records);
        for f in spf_analysis::provenance::check(func, &pcfg, &records) {
            violations += 1;
            emit(&format!(
                "{}/{}/{}: {} g{generation}: provenance: {f}",
                spec.name,
                options.mode,
                proc.name,
                func.name()
            ));
        }
    }

    let mut strides = StrideCrossCheck::default();
    for r in vm.reports() {
        strides.add(&r.stride_check_totals());
    }
    (violations, strides, compiled, tally)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let keep = |n: &str| args.only.as_deref().is_none_or(|o| o == n);

    let mut violations = 0;
    let mut cells = 0;
    let mut compiled_total = 0;
    let mut grand = StrideCrossCheck::default();
    let mut grand_tally = ProvenanceTally::default();
    let mut agreement = String::new();
    let mut provenance = String::new();
    for spec in spf_workloads::all() {
        if !keep(spec.name) {
            continue;
        }
        // Original bodies are mode- and processor-independent: check once.
        let built = (spec.build)(args.size);
        violations += check_originals(spec.name, &built.program);

        for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
            for options in [
                PrefetchOptions::off(),
                PrefetchOptions::inter(),
                PrefetchOptions::inter_intra(),
                PrefetchOptions::adaptive(),
                PrefetchOptions::static_first(),
            ] {
                let (v, strides, compiled, tally) = check_cell(&spec, &options, &proc, args.size);
                violations += v;
                cells += 1;
                compiled_total += compiled;
                grand.add(&strides);
                grand_tally.r#static += tally.r#static;
                grand_tally.dynamic += tally.dynamic;
                grand_tally.hybrid += tally.hybrid;
                let _ = writeln!(
                    agreement,
                    "{{\"name\": \"{}\", \"mode\": \"{}\", \"processor\": \"{}\", \
                     \"agree\": {}, \"disagree\": {}, \"static_only\": {}, \
                     \"dynamic_only\": {}}}",
                    spec.name,
                    options.mode,
                    proc.name,
                    strides.agree,
                    strides.disagree,
                    strides.static_only,
                    strides.dynamic_only
                );
                let _ = writeln!(
                    provenance,
                    "{{\"name\": \"{}\", \"mode\": \"{}\", \"processor\": \"{}\", \
                     \"static\": {}, \"dynamic\": {}, \"hybrid\": {}}}",
                    spec.name, options.mode, proc.name, tally.r#static, tally.dynamic, tally.hybrid
                );
            }
        }
    }

    if let Some(path) = &args.agreement_out {
        spf_bench::out_dir::ensure_parent(path);
        match std::fs::write(path, &agreement) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    if let Some(path) = &args.provenance_out {
        spf_bench::out_dir::ensure_parent(path);
        match std::fs::write(path, &provenance) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    emit(&format!(
        "spf-lint: {cells} cell(s), {compiled_total} compiled method(s), \
         strides[{grand}], provenance[static {} / dynamic {} / hybrid {}], \
         {violations} violation(s)",
        grand_tally.r#static, grand_tally.dynamic, grand_tally.hybrid
    ));
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
