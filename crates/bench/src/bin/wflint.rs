//! Offline workflow lint — a vendored subset of `actionlint`, so CI can
//! lint its own workflow files without a network fetch or a pinned
//! third-party binary.
//!
//! ```text
//! cargo run -p spf-bench --bin wflint -- .github/workflows/ci.yml \
//!     .github/actions/rust-setup/action.yml
//! ```
//!
//! Checks, per file (line-based — the workflows in this repo are plain
//! block YAML, no flow collections or anchors):
//!
//! * every `uses:` is either a version-pinned marketplace action
//!   (`owner/repo@vN`, never `@main`/`@master`) or a local `./` path
//!   whose `action.yml` exists relative to the current directory;
//! * every job under `jobs:` declares `runs-on:`;
//! * every `run:` step of a composite action declares `shell:`
//!   (workflow jobs inherit a default shell, composite steps do not);
//! * `${{` / `}}` expression delimiters are balanced on each line.
//!
//! Exit code: 0 when every file is clean, 1 otherwise.

use std::process::ExitCode;

/// One lint finding: file, line number (1-based), message.
#[derive(Debug, PartialEq)]
pub struct Finding {
    pub line: usize,
    pub message: String,
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// Strips a trailing YAML comment (a ` #` outside quotes — good enough
/// for the block-style workflows this repo writes).
fn strip_comment(line: &str) -> &str {
    match line.find(" #") {
        Some(i) if !line[..i].contains('\'') && !line[..i].contains('"') => &line[..i],
        _ => line,
    }
}

/// The value of a `key: value` line, unquoted, or `None` if the line is
/// not that key.
fn value_of<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let t = strip_comment(line).trim_start();
    let rest = t.strip_prefix(key)?.strip_prefix(':')?;
    Some(rest.trim().trim_matches('"').trim_matches('\''))
}

/// `uses:` lines may sit on a step bullet (`- uses: ...`).
fn uses_of(line: &str) -> Option<&str> {
    let t = strip_comment(line).trim_start();
    let t = t.strip_prefix("- ").unwrap_or(t);
    let rest = t.strip_prefix("uses")?.strip_prefix(':')?;
    Some(rest.trim().trim_matches('"').trim_matches('\''))
}

fn check_uses(spec: &str, local_root_exists: impl Fn(&str) -> bool) -> Option<String> {
    if let Some(path) = spec.strip_prefix("./") {
        if !local_root_exists(path) {
            return Some(format!(
                "local action `{spec}` has no action.yml in the tree"
            ));
        }
        return None;
    }
    if spec.starts_with("docker://") {
        // Out of scope for this repo; flag it so someone looks.
        return Some(format!("docker action `{spec}` is not allowed here"));
    }
    let Some((_, version)) = spec.rsplit_once('@') else {
        return Some(format!("action `{spec}` is not pinned (missing @version)"));
    };
    if version.is_empty() || version == "main" || version == "master" {
        return Some(format!(
            "action `{spec}` must pin a release, not `{version}`"
        ));
    }
    None
}

/// Lints one file's text. `is_composite` switches between workflow rules
/// (jobs need `runs-on:`) and composite-action rules (`run:` steps need
/// `shell:`). `local_root_exists` answers whether `<path>/action.yml`
/// exists, so tests can run hermetically.
pub fn lint(
    text: &str,
    is_composite: bool,
    local_root_exists: impl Fn(&str) -> bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    for (i, raw) in lines.iter().enumerate() {
        let n = i + 1;
        let line = strip_comment(raw);
        if line.matches("${{").count() != line.matches("}}").count() {
            findings.push(Finding {
                line: n,
                message: "unbalanced ${{ }} expression delimiters".to_string(),
            });
        }
        if let Some(spec) = uses_of(line) {
            if let Some(msg) = check_uses(spec, &local_root_exists) {
                findings.push(Finding {
                    line: n,
                    message: msg,
                });
            }
        }
    }

    if is_composite {
        // Every `run:` step must carry a `shell:` within the same step
        // (between step bullets).
        let mut step_start = None;
        let mut steps: Vec<(usize, usize)> = Vec::new();
        for (i, raw) in lines.iter().enumerate() {
            if strip_comment(raw).trim_start().starts_with("- ") {
                if let Some(s) = step_start {
                    steps.push((s, i));
                }
                step_start = Some(i);
            }
        }
        if let Some(s) = step_start {
            steps.push((s, lines.len()));
        }
        for (s, e) in steps {
            let block = &lines[s..e];
            let has_run = block.iter().any(|l| {
                let t = strip_comment(l).trim_start();
                let t = t.strip_prefix("- ").unwrap_or(t);
                t.starts_with("run:")
            });
            let has_shell = block.iter().any(|l| value_of(l, "shell").is_some());
            if has_run && !has_shell {
                findings.push(Finding {
                    line: s + 1,
                    message: "composite run step without an explicit shell:".to_string(),
                });
            }
        }
    } else {
        // Every job (a key indented directly under `jobs:`) needs
        // `runs-on:` unless it is a reusable-workflow call (`uses:`).
        let jobs_at = lines
            .iter()
            .position(|l| strip_comment(l).trim_end() == "jobs:");
        if let Some(jobs_at) = jobs_at {
            let job_indent = lines[jobs_at + 1..]
                .iter()
                .find(|l| !strip_comment(l).trim().is_empty())
                .map_or(2, |l| indent_of(l));
            let mut current: Option<(usize, String)> = None;
            let mut jobs: Vec<(usize, String, usize)> = Vec::new(); // start, name, end
            for (i, raw) in lines.iter().enumerate().skip(jobs_at + 1) {
                let line = strip_comment(raw);
                if line.trim().is_empty() {
                    continue;
                }
                let ind = indent_of(line);
                if ind < job_indent {
                    if let Some((s, name)) = current.take() {
                        jobs.push((s, name, i));
                    }
                    break;
                }
                if ind == job_indent && line.trim_end().ends_with(':') {
                    if let Some((s, name)) = current.take() {
                        jobs.push((s, name, i));
                    }
                    current = Some((i, line.trim().trim_end_matches(':').to_string()));
                }
            }
            if let Some((s, name)) = current {
                jobs.push((s, name, lines.len()));
            }
            for (s, name, e) in jobs {
                let block = &lines[s..e];
                let has_runner = block.iter().any(|l| value_of(l, "runs-on").is_some());
                let is_reusable = block
                    .iter()
                    .any(|l| indent_of(l) == job_indent + 2 && value_of(l, "uses").is_some());
                if !has_runner && !is_reusable {
                    findings.push(Finding {
                        line: s + 1,
                        message: format!("job `{name}` has no runs-on:"),
                    });
                }
            }
        }
    }
    findings
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: wflint FILE.yml [FILE.yml ...]");
        return ExitCode::FAILURE;
    }
    let mut bad = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("wflint: {path}: {e}");
                bad += 1;
                continue;
            }
        };
        // Composite actions declare `runs: using: composite`.
        let is_composite = text.contains("using: composite");
        let findings = lint(&text, is_composite, |p| {
            std::path::Path::new(p).join("action.yml").is_file()
                || std::path::Path::new(p).join("action.yaml").is_file()
        });
        for f in &findings {
            println!("{path}:{}: {}", f.line, f.message);
        }
        if findings.is_empty() {
            eprintln!("wflint: {path}: OK");
        } else {
            bad += 1;
        }
    }
    if bad > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_marketplace_actions_pass() {
        let wf = "jobs:\n  a:\n    runs-on: ubuntu-latest\n    steps:\n      - uses: actions/checkout@v4\n";
        assert!(lint(wf, false, |_| true).is_empty());
    }

    #[test]
    fn unpinned_and_branch_pinned_actions_fail() {
        let wf = "jobs:\n  a:\n    runs-on: x\n    steps:\n      - uses: actions/checkout\n      - uses: actions/cache@main\n";
        let f = lint(wf, false, |_| true);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("not pinned"));
        assert!(f[1].message.contains("must pin a release"));
    }

    #[test]
    fn missing_local_action_fails_and_present_one_passes() {
        let wf =
            "jobs:\n  a:\n    runs-on: x\n    steps:\n      - uses: ./.github/actions/rust-setup\n";
        assert!(lint(wf, false, |p| p == ".github/actions/rust-setup").is_empty());
        let f = lint(wf, false, |_| false);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no action.yml"), "{f:?}");
    }

    #[test]
    fn job_without_runs_on_fails() {
        let wf = "jobs:\n  good:\n    runs-on: x\n    steps: []\n  bad:\n    steps: []\n";
        let f = lint(wf, false, |_| true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`bad` has no runs-on"));
    }

    #[test]
    fn composite_run_step_requires_shell() {
        let good = "runs:\n  using: composite\n  steps:\n    - name: a\n      shell: bash\n      run: echo hi\n";
        assert!(lint(good, true, |_| true).is_empty());
        let bad = "runs:\n  using: composite\n  steps:\n    - name: a\n      run: echo hi\n";
        let f = lint(bad, true, |_| true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("without an explicit shell"));
    }

    #[test]
    fn unbalanced_expression_flagged() {
        let wf = "jobs:\n  a:\n    runs-on: ${{ matrix.os\n";
        let f = lint(wf, false, |_| true);
        assert!(f.iter().any(|f| f.message.contains("unbalanced")), "{f:?}");
    }
}
