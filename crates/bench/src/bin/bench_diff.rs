//! Compares two `BENCH_matrix.json` files cell by cell.
//!
//! ```text
//! cargo run -p spf-bench --bin bench_diff -- old.json new.json
//! ```
//!
//! For every (workload, mode, processor) cell present in both files it
//! prints the wall-clock speedup and flags any drift in the *simulated*
//! numbers (cycles, retired instructions, adaptive deopt/recompile and
//! per-loop invalidation/repatch counters, compile-time inspection cost,
//! static-site counts, checksum),
//! which must be invariant across hosts, worker counts, and host-side
//! optimisations.
//! Exit code: 0 if no simulated number drifted, 1 otherwise (or on usage
//! and parse errors).

use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;

use spf_bench::matrix_json::{self, CellSummary};

fn load(path: &str) -> Result<Vec<CellSummary>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (cells, warnings) =
        matrix_json::parse_with_warnings(&text).map_err(|e| format!("{path}: {e}"))?;
    for w in warnings {
        eprintln!("bench_diff: {path}: {w}");
    }
    Ok(cells)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_diff OLD.json NEW.json");
        return ExitCode::FAILURE;
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Render into a buffer and write it in one shot, ignoring EPIPE, so
    // `bench_diff ... | head` still yields the right exit code.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<12} {:<10} {:>14} {:>14} {:>9} {:>8}",
        "program", "mode", "processor", "old wall (ms)", "new wall (ms)", "speedup", "cycles"
    );
    let mut drift = 0usize;
    let mut matched = 0usize;
    let (mut old_total, mut new_total) = (0u128, 0u128);
    for o in &old {
        let Some(n) = new.iter().find(|n| n.key() == o.key()) else {
            continue;
        };
        matched += 1;
        old_total += o.wall_nanos;
        new_total += n.wall_nanos;
        let cycles_note = if o.best_cycles == n.best_cycles
            && o.retired == n.retired
            && o.deopts == n.deopts
            && o.recompiles == n.recompiles
            && o.loop_deopts == n.loop_deopts
            && o.loop_repatches == n.loop_repatches
            && o.reagreed == n.reagreed
            && o.inspection_cycles == n.inspection_cycles
            && o.static_sites == n.static_sites
            && o.checksum == n.checksum
        {
            "same"
        } else {
            drift += 1;
            "DRIFT"
        };
        let _ = writeln!(
            out,
            "{:<12} {:<12} {:<10} {:>14.2} {:>14.2} {:>8.2}x {:>8}",
            o.name,
            o.mode,
            o.processor,
            o.wall_nanos as f64 / 1e6,
            n.wall_nanos as f64 / 1e6,
            o.wall_nanos as f64 / n.wall_nanos.max(1) as f64,
            cycles_note
        );
    }
    if matched == 0 {
        eprintln!("bench_diff: no common cells between {old_path} and {new_path}");
        return ExitCode::FAILURE;
    }
    let _ = writeln!(
        out,
        "total: {matched} cells, {:.2} ms -> {:.2} ms ({:.2}x wall-clock)",
        old_total as f64 / 1e6,
        new_total as f64 / 1e6,
        old_total as f64 / new_total.max(1) as f64
    );
    if drift > 0 {
        let _ = writeln!(
            out,
            "{drift} cell(s) DRIFTED in simulated numbers — results are not comparable"
        );
    }
    let _ = std::io::stdout().write_all(out.as_bytes());
    if drift > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
