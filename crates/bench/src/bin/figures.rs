//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p spf-bench --bin figures            # full size
//! cargo run --release -p spf-bench --bin figures -- small   # quicker
//! cargo run --release -p spf-bench --bin figures -- tiny db # one workload
//! ```

use spf_bench::figures;
use spf_bench::RunPlan;
use spf_workloads::Size;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size = match args.first().map(String::as_str) {
        Some("tiny") => Size::Tiny,
        Some("small") => Size::Small,
        _ => Size::Full,
    };
    let only: Option<&str> = args.get(1).map(String::as_str);
    let plan = RunPlan {
        size,
        ..RunPlan::default()
    };

    println!("{}", figures::table2());
    println!("{}", figures::table1_and_fig5());

    eprintln!("running experiment grid (this takes a few minutes at full size)...");
    let data = figures::collect_filtered(&plan, |n| only.is_none_or(|o| o == n));
    println!("{}", data.table3());
    println!("{}", data.fig6());
    println!("{}", data.fig7());
    println!("{}", data.fig8());
    println!("{}", data.fig9());
    println!("{}", data.fig10());
    println!("{}", data.fig11());
}
