//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p spf-bench --bin figures                  # full size
//! cargo run --release -p spf-bench --bin figures -- small         # quicker
//! cargo run --release -p spf-bench --bin figures -- tiny db       # one workload
//! cargo run --release -p spf-bench --bin figures -- small --jobs 8
//! cargo run --release -p spf-bench --bin figures -- tiny --verify-serial
//! cargo run --release -p spf-bench --bin figures -- tiny --trace
//! cargo run --release -p spf-bench --bin figures -- tiny --timing-runs 3
//! ```
//!
//! The experiment matrix is sharded across worker threads (`--jobs N`,
//! `$SPF_JOBS`, default: available parallelism); parallelism never alters
//! the simulated results. Each sweep also writes `BENCH_matrix.json`
//! (override the path with `--matrix-out PATH`, disable with
//! `--matrix-out -`) recording per-cell wall-clock and simulated cycles;
//! compare two such files with the `bench_diff` binary (simulated
//! numbers) or the `host_check` binary (host throughput).
//! `--timing-runs N` re-runs each cell N times (asserted bit-identical)
//! and records the median host wall-clock as the cell's `host_wall_ns`. `--out-dir DIR`
//! redirects every relative artifact path into `DIR` (created if
//! missing).
//!
//! `--verify-serial` runs one cell both through the parallel scheduler and
//! directly on the main thread, then diffs the two `Measurement`s field by
//! field and exits (0 = identical).
//!
//! `--trace` re-runs the matrix with event tracing after the untraced
//! sweep, asserts the traced simulated numbers are bit-identical to the
//! untraced ones, reconciles every cell's per-site prefetch classification
//! against its aggregate memory counters, and writes the per-site
//! effectiveness record to `TRACE_summary.jsonl` (override with
//! `--trace-out PATH`, disable the file with `--trace-out -`; render or
//! diff it with the `spf-trace-report` binary). The adaptive-reprofiling
//! events of every cell additionally land in `DEOPT_events.jsonl` next to
//! the site summary; aggregate them per cell with
//! `spf-trace-report deopt-summary DEOPT_events.jsonl`.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use spf_bench::RunPlan;
use spf_bench::{figures, matrix, matrix_json, out_dir};
use spf_trace::{deopt, summary, TraceEvent};
use spf_workloads::Size;

struct Args {
    size: Size,
    only: Option<String>,
    jobs: usize,
    timing_runs: u32,
    verify_serial: bool,
    matrix_out: Option<String>,
    trace: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: Size::Full,
        only: None,
        jobs: matrix::default_jobs(),
        timing_runs: 1,
        verify_serial: false,
        matrix_out: Some("BENCH_matrix.json".to_string()),
        trace: false,
        trace_out: Some("TRACE_summary.jsonl".to_string()),
    };
    let mut dir_flag: Option<String> = None;
    let mut it = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out-dir" => {
                dir_flag = Some(it.next().ok_or("--out-dir needs a directory")?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("--jobs needs a positive integer, got {v:?}")),
                };
            }
            "--timing-runs" => {
                let v = it.next().ok_or("--timing-runs needs a value")?;
                args.timing_runs = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("--timing-runs needs a positive integer, got {v:?}")),
                };
            }
            "--verify-serial" => args.verify_serial = true,
            "--matrix-out" => {
                let v = it
                    .next()
                    .ok_or("--matrix-out needs a path (or - to disable)")?;
                args.matrix_out = if v == "-" { None } else { Some(v) };
            }
            "--trace" => args.trace = true,
            "--trace-out" => {
                let v = it
                    .next()
                    .ok_or("--trace-out needs a path (or - to disable)")?;
                args.trace = true;
                args.trace_out = if v == "-" { None } else { Some(v) };
            }
            _ => positional.push(a),
        }
    }
    if let Some(dir) = &dir_flag {
        args.matrix_out = args.matrix_out.map(|p| out_dir::join(dir, &p));
        args.trace_out = args.trace_out.map(|p| out_dir::join(dir, &p));
    }
    if let Some(s) = positional.first() {
        args.size = match s.as_str() {
            "tiny" => Size::Tiny,
            "small" => Size::Small,
            _ => Size::Full,
        };
    }
    args.only = positional.get(1).cloned();
    if let Some(only) = &args.only {
        if !spf_workloads::registry::all()
            .iter()
            .any(|s| s.name == *only)
        {
            let names: Vec<_> = spf_workloads::registry::all()
                .iter()
                .map(|s| s.name)
                .collect();
            return Err(format!(
                "unknown workload {only:?}; known workloads: {}",
                names.join(", ")
            ));
        }
    }
    Ok(args)
}

/// Prints to stdout without panicking when the pipe closes early (e.g.
/// `figures | head`) — same pattern as `bench_diff`.
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(text.as_bytes());
    let _ = out.write_all(b"\n");
}

/// Runs the first kept cell both through the parallel scheduler and
/// directly, and diffs the resulting `Measurement`s.
fn verify_serial(plan: &RunPlan, keep: impl Fn(&str) -> bool) -> ExitCode {
    let cells = matrix::cells(keep);
    let cell = cells.first().expect("no workload matches the filter");
    eprintln!(
        "verify-serial: {} / {} / {}",
        cell.spec.name, cell.options.mode, cell.proc.name
    );
    let threaded = matrix::run_cells(plan, 2, std::slice::from_ref(cell));
    let direct = spf_bench::run_workload(&cell.spec, &cell.options, &cell.proc, plan);
    let diff = threaded[0].measurement.simulated_diff(&direct);
    if diff.is_empty() {
        emit("verify-serial: OK — parallel and serial measurements are identical");
        ExitCode::SUCCESS
    } else {
        emit("verify-serial: MISMATCH");
        for d in &diff {
            emit(&format!("  {d}"));
        }
        ExitCode::FAILURE
    }
}

/// Re-runs the matrix with tracing, asserts the traced numbers are
/// bit-identical to the untraced `results`, reconciles each cell's
/// per-site classification against its aggregate counters, and writes the
/// per-site summary. Returns `false` on any violation.
fn traced_sweep(
    plan: &RunPlan,
    jobs: usize,
    cells: &[matrix::Cell],
    results: &[matrix::CellResult],
    trace_out: Option<&str>,
) -> bool {
    eprintln!("re-running the grid with event tracing...");
    let traced = matrix::run_cells_traced(plan, jobs, cells);
    let mut ok = true;
    let mut rows = Vec::new();
    let mut deopt_rows = Vec::new();
    for (t, u) in traced.iter().zip(results) {
        let m = &t.measurement;
        let run = format!("{}/{}/{}", m.name, m.mode, m.processor);
        let diff = m.simulated_diff(&u.measurement);
        if !diff.is_empty() {
            ok = false;
            emit(&format!("trace: {run}: traced run DIVERGED:"));
            for d in &diff {
                emit(&format!("  {d}"));
            }
        }
        let issued = m.mem.swpf_issued + m.mem.guarded_loads;
        let attr = &t.trace.attribution;
        let classified = attr.total(|e| e.useful() + e.too_early() + e.too_late() + e.dropped());
        if t.trace.lost > 0 {
            eprintln!(
                "trace: {run}: ring dropped {} event(s); classification is partial",
                t.trace.lost
            );
        } else if classified != issued {
            ok = false;
            emit(&format!(
                "trace: {run}: {classified} classified != {issued} issued \
                 (swpf {} + guarded {})",
                m.mem.swpf_issued, m.mem.guarded_loads
            ));
        }
        // Adaptive counters must reconcile exactly with the trace: every
        // deopt/recompile and every per-loop invalidation/repatch the VM
        // counted (warm-up plus best run) has a matching event
        // (compile_events plus best-run attribution) — unless the ring
        // dropped events in either phase.
        if t.trace.lost == 0 && t.trace.warm_lost == 0 {
            let count = |evs: &[TraceEvent], want: &str| {
                evs.iter()
                    .filter(|e| match e {
                        TraceEvent::Deopt { .. } => want == "deopt",
                        TraceEvent::Recompile { .. } => want == "recompile",
                        TraceEvent::LoopInvalidated { .. } => want == "loop_invalidated",
                        TraceEvent::LoopRepatched { .. } => want == "loop_repatched",
                        _ => false,
                    })
                    .count() as u64
            };
            let ce = &t.trace.compile_events;
            let ev_deopts = count(ce, "deopt") + attr.deopts;
            let ev_recompiles = count(ce, "recompile") + attr.recompiles;
            let ev_loop_inv = count(ce, "loop_invalidated") + attr.loop_invalidated;
            let ev_loop_rep = count(ce, "loop_repatched") + attr.loop_repatched;
            if ev_deopts != m.deopts || ev_recompiles != m.recompiles {
                ok = false;
                emit(&format!(
                    "trace: {run}: adaptive counters diverge from events: \
                     deopts {} != {ev_deopts}, recompiles {} != {ev_recompiles}",
                    m.deopts, m.recompiles
                ));
            }
            if ev_loop_inv != m.loop_deopts || ev_loop_rep != m.loop_repatches {
                ok = false;
                emit(&format!(
                    "trace: {run}: per-loop counters diverge from events: \
                     loop_deopts {} != {ev_loop_inv}, loop_repatches {} != {ev_loop_rep}",
                    m.loop_deopts, m.loop_repatches
                ));
            }
        }
        rows.extend(summary::rows(&run, attr, &t.trace.sites));
        // Adaptive-reprofiling events land in both phases: deopts and
        // recompiles during warm-up go to `compile_events`, steady-state
        // ones to the best run's stream.
        deopt_rows.extend(deopt::rows(&run, &t.trace.compile_events));
        deopt_rows.extend(deopt::rows(&run, &t.trace.events));
    }
    let issued: u64 = rows.iter().map(|r| r.issued).sum();
    let useful: u64 = rows.iter().map(|r| r.useful).sum();
    eprintln!(
        "trace: {} cell(s), {} site(s), {issued} prefetches issued ({useful} useful)",
        traced.len(),
        rows.len(),
    );
    if let Some(path) = trace_out {
        out_dir::ensure_parent(path);
        match std::fs::write(path, summary::emit(&rows)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
        // The adaptive-event record rides along next to the site summary;
        // aggregate it with `spf-trace-report deopt-summary`.
        let deopt_path = match path.rsplit_once('/') {
            Some((dir, _)) => format!("{dir}/DEOPT_events.jsonl"),
            None => "DEOPT_events.jsonl".to_string(),
        };
        match std::fs::write(&deopt_path, deopt::emit(&deopt_rows)) {
            Ok(()) => eprintln!(
                "wrote {deopt_path} ({} adaptive event(s))",
                deopt_rows.len()
            ),
            Err(e) => eprintln!("warning: could not write {deopt_path}: {e}"),
        }
    }
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = RunPlan {
        size: args.size,
        timing_runs: args.timing_runs,
        ..RunPlan::default()
    };
    let keep = |n: &str| args.only.as_deref().is_none_or(|o| o == n);

    if args.verify_serial {
        return verify_serial(&plan, keep);
    }

    emit(&figures::table2());
    emit(&figures::table1_and_fig5());

    eprintln!(
        "running experiment grid on {} worker(s) (this takes a few minutes at full size)...",
        args.jobs
    );
    let cells = matrix::cells(keep);
    let t0 = Instant::now();
    let results = matrix::run_cells(&plan, args.jobs, &cells);
    matrix::assert_checksums_agree(&results);
    let total_wall = t0.elapsed().as_nanos();
    let host_total: u128 = results.iter().map(|r| r.host_wall_ns).sum();
    eprintln!(
        "grid done: {} cells in {:.2}s \
         (host throughput: {:.1} ms summed per-cell median wall-clock, \
         {} timing run(s) per cell)",
        results.len(),
        total_wall as f64 / 1e9,
        host_total as f64 / 1e6,
        plan.timing_runs.max(1),
    );

    if let Some(path) = &args.matrix_out {
        let json = matrix_json::emit(&results, args.size, args.jobs, total_wall);
        out_dir::ensure_parent(path);
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }

    let traced_ok = if args.trace {
        traced_sweep(
            &plan,
            args.jobs,
            &cells,
            &results,
            args.trace_out.as_deref(),
        )
    } else {
        true
    };

    let data = figures::from_measurements(results.into_iter().map(|r| r.measurement).collect());
    emit(&data.table3());
    emit(&data.stride_table());
    emit(&data.static_first_table());
    emit(&data.adaptive_table());
    emit(&data.fig6());
    emit(&data.fig7());
    emit(&data.fig8());
    emit(&data.fig9());
    emit(&data.fig10());
    emit(&data.fig11());
    if traced_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
