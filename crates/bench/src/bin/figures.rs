//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p spf-bench --bin figures                  # full size
//! cargo run --release -p spf-bench --bin figures -- small         # quicker
//! cargo run --release -p spf-bench --bin figures -- tiny db       # one workload
//! cargo run --release -p spf-bench --bin figures -- small --jobs 8
//! cargo run --release -p spf-bench --bin figures -- tiny --verify-serial
//! ```
//!
//! The experiment matrix is sharded across worker threads (`--jobs N`,
//! `$SPF_JOBS`, default: available parallelism); parallelism never alters
//! the simulated results. Each sweep also writes `BENCH_matrix.json`
//! (override the path with `--matrix-out PATH`, disable with
//! `--matrix-out -`) recording per-cell wall-clock and simulated cycles;
//! compare two such files with the `bench_diff` binary.
//!
//! `--verify-serial` runs one cell both through the parallel scheduler and
//! directly on the main thread, then diffs the two `Measurement`s field by
//! field and exits (0 = identical).

use std::process::ExitCode;
use std::time::Instant;

use spf_bench::RunPlan;
use spf_bench::{figures, matrix, matrix_json};
use spf_workloads::Size;

struct Args {
    size: Size,
    only: Option<String>,
    jobs: usize,
    verify_serial: bool,
    matrix_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: Size::Full,
        only: None,
        jobs: matrix::default_jobs(),
        verify_serial: false,
        matrix_out: Some("BENCH_matrix.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("--jobs needs a positive integer, got {v:?}")),
                };
            }
            "--verify-serial" => args.verify_serial = true,
            "--matrix-out" => {
                let v = it
                    .next()
                    .ok_or("--matrix-out needs a path (or - to disable)")?;
                args.matrix_out = if v == "-" { None } else { Some(v) };
            }
            _ => positional.push(a),
        }
    }
    if let Some(s) = positional.first() {
        args.size = match s.as_str() {
            "tiny" => Size::Tiny,
            "small" => Size::Small,
            _ => Size::Full,
        };
    }
    args.only = positional.get(1).cloned();
    if let Some(only) = &args.only {
        if !spf_workloads::registry::all()
            .iter()
            .any(|s| s.name == *only)
        {
            let names: Vec<_> = spf_workloads::registry::all()
                .iter()
                .map(|s| s.name)
                .collect();
            return Err(format!(
                "unknown workload {only:?}; known workloads: {}",
                names.join(", ")
            ));
        }
    }
    Ok(args)
}

/// Runs the first kept cell both through the parallel scheduler and
/// directly, and diffs the resulting `Measurement`s.
fn verify_serial(plan: &RunPlan, keep: impl Fn(&str) -> bool) -> ExitCode {
    let cells = matrix::cells(keep);
    let cell = cells.first().expect("no workload matches the filter");
    eprintln!(
        "verify-serial: {} / {} / {}",
        cell.spec.name, cell.options.mode, cell.proc.name
    );
    let threaded = matrix::run_cells(plan, 2, std::slice::from_ref(cell));
    let direct = spf_bench::run_workload(&cell.spec, &cell.options, &cell.proc, plan);
    let diff = threaded[0].measurement.simulated_diff(&direct);
    if diff.is_empty() {
        println!("verify-serial: OK — parallel and serial measurements are identical");
        ExitCode::SUCCESS
    } else {
        println!("verify-serial: MISMATCH");
        for d in &diff {
            println!("  {d}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = RunPlan {
        size: args.size,
        ..RunPlan::default()
    };
    let keep = |n: &str| args.only.as_deref().is_none_or(|o| o == n);

    if args.verify_serial {
        return verify_serial(&plan, keep);
    }

    println!("{}", figures::table2());
    println!("{}", figures::table1_and_fig5());

    eprintln!(
        "running experiment grid on {} worker(s) (this takes a few minutes at full size)...",
        args.jobs
    );
    let t0 = Instant::now();
    let results = matrix::run_matrix(&plan, args.jobs, keep);
    let total_wall = t0.elapsed().as_nanos();
    eprintln!(
        "grid done: {} cells in {:.2}s",
        results.len(),
        total_wall as f64 / 1e9
    );

    if let Some(path) = &args.matrix_out {
        let json = matrix_json::emit(&results, args.size, args.jobs, total_wall);
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }

    let data = figures::from_measurements(results.into_iter().map(|r| r.measurement).collect());
    println!("{}", data.table3());
    println!("{}", data.fig6());
    println!("{}", data.fig7());
    println!("{}", data.fig8());
    println!("{}", data.fig9());
    println!("{}", data.fig10());
    println!("{}", data.fig11());
    ExitCode::SUCCESS
}
