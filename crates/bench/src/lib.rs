//! Experiment harness: runs workloads under each configuration and
//! regenerates every table and figure of the paper.
//!
//! The measurement protocol mirrors the paper's (§4): workloads are run
//! repeatedly; the first runs warm up the JIT (methods get compiled, with
//! object inspection seeing live data); measurement then restarts the
//! memory system and takes the *best* of the remaining runs — "the best run
//! times under automatic continuous execution", which excludes JIT
//! compilation time. JIT-time fractions for Figure 11 are taken from the
//! warm-up phase, where compilation actually happens.

pub mod figures;
pub mod matrix;
pub mod matrix_json;
pub mod out_dir;
pub mod runner;

pub use runner::{run_workload, run_workload_traced, Measurement, RunPlan, WorkloadTrace};
