//! End-to-end tracing invariants, from workload execution through
//! per-site attribution:
//!
//! 1. Tracing must never change the simulation — traced and untraced
//!    measurements are bit-identical.
//! 2. Every issued software prefetch is classified into exactly one
//!    bucket, and the per-site totals reconcile with the memory system's
//!    aggregate counters.
//! 3. Every prefetch site of the compiled code appears exactly once in
//!    the attribution table, and every runtime event resolves to a
//!    registered site.

use spf_bench::{run_workload, run_workload_traced, RunPlan};
use spf_core::PrefetchOptions;
use spf_memsim::ProcessorConfig;
use spf_trace::{summary, TraceEvent};
use spf_workloads::Size;

fn tiny_plan() -> RunPlan {
    RunPlan {
        size: Size::Tiny,
        warmup_runs: 2,
        measured_runs: 2,
        timing_runs: 1,
    }
}

/// The cells the invariants are checked on: one pointer-chasing workload
/// on both processors under both prefetching configurations.
fn traced_cells() -> Vec<(PrefetchOptions, ProcessorConfig)> {
    let mut out = Vec::new();
    for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
        for options in [PrefetchOptions::inter(), PrefetchOptions::inter_intra()] {
            out.push((options, proc.clone()));
        }
    }
    out
}

fn db_spec() -> spf_workloads::WorkloadSpec {
    spf_workloads::all()
        .into_iter()
        .find(|s| s.name == "db")
        .expect("db workload exists")
}

#[test]
fn tracing_never_changes_the_measurement() {
    let plan = tiny_plan();
    let spec = db_spec();
    for (options, proc) in traced_cells() {
        let untraced = run_workload(&spec, &options, &proc, &plan);
        let (traced, _) = run_workload_traced(&spec, &options, &proc, &plan);
        let diff = traced.simulated_diff(&untraced);
        assert!(
            diff.is_empty(),
            "{}/{}: traced run diverged: {diff:?}",
            options.mode,
            proc.name
        );
    }
}

#[test]
fn every_issued_prefetch_is_classified_exactly_once() {
    let plan = tiny_plan();
    let spec = db_spec();
    let mut nonvacuous = false;
    for (options, proc) in traced_cells() {
        let (m, t) = run_workload_traced(&spec, &options, &proc, &plan);
        if t.lost > 0 {
            // A truncated ring cannot reconcile; the default capacity is
            // sized so this does not happen at tiny size.
            panic!(
                "{}/{}: ring dropped {} events",
                options.mode, proc.name, t.lost
            );
        }
        let attr = &t.attribution;
        let issued = m.mem.swpf_issued + m.mem.guarded_loads;
        let classified = attr.total(|e| e.useful() + e.too_early() + e.too_late() + e.dropped());
        assert_eq!(
            classified, issued,
            "{}/{}: classification must partition issued prefetches",
            options.mode, proc.name
        );
        assert_eq!(
            attr.total(|e| e.issued()),
            issued,
            "{}/{}: per-site issue counts must sum to the aggregate",
            options.mode,
            proc.name
        );
        assert_eq!(
            attr.total(|e| e.dropped()),
            m.mem.swpf_dropped_tlb,
            "{}/{}: dropped bucket equals the DTLB-cancel counter",
            options.mode,
            proc.name
        );
        assert_eq!(
            attr.total(|e| e.guarded_issued),
            m.mem.guarded_loads,
            "{}/{}: guarded issues must sum to the aggregate",
            options.mode,
            proc.name
        );
        assert_eq!(
            attr.hw_prefetch_fills, m.mem.hw_prefetch_fills,
            "{}/{}: hardware prefetch fills must agree",
            options.mode, proc.name
        );
        if issued > 0 {
            nonvacuous = true;
        }
    }
    assert!(nonvacuous, "no cell issued any prefetch — test is vacuous");
}

#[test]
fn every_prefetch_site_appears_exactly_once() {
    let plan = tiny_plan();
    let spec = db_spec();
    let (m, t) = run_workload_traced(
        &spec,
        &PrefetchOptions::inter_intra(),
        &ProcessorConfig::pentium4(),
        &plan,
    );
    assert!(!t.sites.is_empty(), "db compiles prefetch sites");

    // Exactly one SiteRegistered compile-time event per table entry.
    let registered = t
        .compile_events
        .iter()
        .filter(|e| matches!(e, TraceEvent::SiteRegistered { .. }))
        .count();
    assert_eq!(registered, t.sites.len());
    assert!(t
        .compile_events
        .iter()
        .any(|e| matches!(e, TraceEvent::JitBegin { .. })));

    // The summary lists each site exactly once, keyed by position.
    let run = format!("{}/{}/{}", m.name, m.mode, m.processor);
    let rows = summary::rows(&run, &t.attribution, &t.sites);
    let mut keys: Vec<_> = rows.iter().map(summary::SummaryRow::key).collect();
    keys.sort();
    let before = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), before, "duplicate site rows in the summary");

    // Every runtime event resolved to a registered site: no synthetic
    // `?` rows, and the summary covers the whole site table.
    assert!(
        rows.iter().all(|r| r.method != "?"),
        "runtime events fell outside the registered site table"
    );
    assert_eq!(rows.len(), t.sites.len());

    // The summary round-trips through its JSONL encoding.
    let parsed = summary::parse(&summary::emit(&rows)).unwrap();
    assert_eq!(parsed, rows);
}
